#include "src/obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "src/obs/json.hpp"
#include "src/obs/telemetry.hpp"
#include "src/util/log.hpp"

namespace ironic::obs {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

void TraceRecorder::push(TraceEvent ev) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::complete_event(
    std::string name, std::string category, double ts_us, double dur_us,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.pid = 1;
  ev.tid = static_cast<int>(thread_index());
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceRecorder::instant_event(
    std::string name, std::string category,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.pid = 1;
  ev.tid = static_cast<int>(thread_index());
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceRecorder::counter_event(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = "counter";
  ev.phase = 'C';
  ev.ts_us = now_us();
  ev.pid = 1;
  ev.args.emplace_back("value", json::number(value));
  push(std::move(ev));
}

void TraceRecorder::flow_begin(std::string name, std::string category,
                               std::uint64_t id) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 's';
  ev.ts_us = now_us();
  ev.pid = 1;
  ev.tid = static_cast<int>(thread_index());
  ev.flow_id = id;
  push(std::move(ev));
}

void TraceRecorder::flow_end(std::string name, std::string category,
                             std::uint64_t id) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'f';
  ev.ts_us = now_us();
  ev.pid = 1;
  ev.tid = static_cast<int>(thread_index());
  ev.flow_id = id;
  push(std::move(ev));
}

void TraceRecorder::sim_span(std::string name, std::string category,
                             double t_start_s, double t_end_s,
                             std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.ts_us = t_start_s * 1e6;
  ev.dur_us = (t_end_s - t_start_s) * 1e6;
  ev.pid = 2;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceRecorder::sim_instant(std::string name, std::string category, double t_s,
                                std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.ts_us = t_s * 1e6;
  ev.pid = 2;
  ev.args = std::move(args);
  push(std::move(ev));
}

std::size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = events_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process-name metadata so the two timelines are labelled in the UI.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"wall clock\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"simulation time\"}}";
  for (const auto& ev : snapshot) {
    os << ",\n{\"name\":\"" << json::escape(ev.name) << "\",\"cat\":\""
       << json::escape(ev.category.empty() ? "app" : ev.category) << "\",\"ph\":\""
       << ev.phase << "\",\"ts\":" << json::number(ev.ts_us);
    if (ev.phase == 'X') os << ",\"dur\":" << json::number(ev.dur_us);
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    if (ev.phase == 's' || ev.phase == 'f') {
      os << ",\"id\":" << ev.flow_id;
      // Bind the arrow to the enclosing slice on the receiving thread.
      if (ev.phase == 'f') os << ",\"bp\":\"e\"";
    }
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : ev.args) {
        if (!first) os << ',';
        first = false;
        // Counter values must be numeric for the viewer's counter track.
        if (ev.phase == 'C') {
          os << '"' << json::escape(k) << "\":" << v;
        } else {
          os << '"' << json::escape(k) << "\":\"" << json::escape(v) << '"';
        }
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    util::Log::warn("TraceRecorder: cannot open trace file " + path);
    return false;
  }
  write_chrome_trace(os);
  return os.good();
}

#if IRONIC_OBS_ENABLED

Span::Span(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category)) {
  auto& recorder = TraceRecorder::instance();
  active_ = recorder.enabled();
  if (active_) start_us_ = recorder.now_us();
}

Span::~Span() { end(); }

void Span::end() {
  if (!active_) return;
  active_ = false;
  auto& recorder = TraceRecorder::instance();
  recorder.complete_event(std::move(name_), std::move(category_), start_us_,
                          recorder.now_us() - start_us_, std::move(args_));
}

void Span::arg(std::string key, std::string value) {
  if (active_) args_.emplace_back(std::move(key), std::move(value));
}

#endif  // IRONIC_OBS_ENABLED

void install_log_bridge() {
  util::Log::set_event_sink([](util::LogLevel, const std::string& component,
                               const std::vector<util::Log::Field>& fields) {
    if constexpr (kEnabled) {
      MetricsRegistry::instance().counter("log.events." + component).add();
      auto& recorder = TraceRecorder::instance();
      if (recorder.enabled()) {
        recorder.instant_event(component, "log", fields);
      }
      auto& sink = TelemetrySink::instance();
      if (sink.is_open()) {
        json::Value::Object extra;
        for (const auto& [key, value] : fields) extra[key] = value;
        sink.emit_event("log", component, std::move(extra));
      }
    }
  });
}

}  // namespace ironic::obs
