// Umbrella header for the observability subsystem:
//   - MetricsRegistry / Counter / Gauge / Histogram  (metrics.hpp)
//   - TraceRecorder / Span / ScopedTimer             (trace.hpp)
//   - PROF_ZONE wall-time profiler                   (profiler.hpp)
//   - TelemetrySink streaming JSONL sink             (telemetry.hpp)
//   - RunReport                                      (report.hpp)
//   - minimal JSON value model                       (json.hpp)
//
// Instrumentation sites should guard per-step work with
// `if constexpr (ironic::obs::kEnabled)` so an IRONIC_OBS_ENABLED=0
// build carries zero overhead. See README.md "Observability".
#pragma once

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/report.hpp"
#include "src/obs/telemetry.hpp"
#include "src/obs/trace.hpp"
