// Machine-readable run telemetry for benches and examples.
//
// Construct one RunReport at the top of main(); on destruction it writes
// `BENCH_<name>.json` — wall time, the full metrics-registry snapshot,
// any extra scalars/notes the program attached, and the git SHA the
// binary was built from — seeding the perf trajectory future PRs diff
// against.
//
// Environment contract (also documented in README.md "Observability"):
//   IRONIC_TRACE=<path>   enable trace recording; the Chrome trace JSON
//                         is written to <path> when the report closes
//                         (IRONIC_TRACE=1 writes <name>.trace.json).
//   IRONIC_METRICS=<path> additionally dump the registry as JSONL.
//   IRONIC_REPORT_DIR=<dir>  where BENCH_<name>.json lands (default cwd).
//   IRONIC_REPORT=0       suppress the report file entirely.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "src/obs/metrics.hpp"

namespace ironic::obs {

// The git SHA baked in at configure time ("unknown" outside a checkout).
const char* build_git_sha();

class RunReport {
 public:
  explicit RunReport(std::string name);
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;
  // Writes the report (unless suppressed) and any requested trace/metrics
  // artifacts. I/O failures are logged, never thrown.
  ~RunReport();

  // Attach a program-specific scalar (e.g. steps_per_sec) or note.
  void metric(const std::string& key, double value);
  void note(const std::string& key, std::string value);

  // Wall seconds since construction.
  double elapsed_seconds() const;

  // Where the report will be written ("" when suppressed).
  std::string report_path() const;

  // Write immediately instead of at destruction (idempotent; the
  // destructor then does nothing). Returns false on I/O failure.
  bool write();

 private:
  std::string name_;
  std::map<std::string, double> extra_metrics_;
  std::map<std::string, std::string> notes_;
  std::string trace_path_;   // "" -> tracing not requested by env
  bool trace_enabled_here_ = false;
  bool written_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ironic::obs
