#include "src/obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace ironic::obs {

namespace {

// Wall-ish timestamp for telemetry rows: microseconds since the first
// telemetry touch in this process (steady clock, so rows order
// correctly even if the system clock steps).
std::int64_t telemetry_ts_us() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

TelemetrySink& TelemetrySink::instance() {
  // Constructed after (and therefore destroyed before) the metrics
  // registry the counter references point into.
  static TelemetrySink sink;
  return sink;
}

TelemetrySink::TelemetrySink()
    : ring_(kTelemetryRingCapacity),
      emitted_(MetricsRegistry::instance().counter("obs.telemetry.emitted")),
      dropped_(MetricsRegistry::instance().counter("obs.telemetry.dropped")),
      written_(MetricsRegistry::instance().counter("obs.telemetry.written")),
      flushes_(MetricsRegistry::instance().counter("obs.telemetry.flushes")) {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  (void)telemetry_ts_us();  // pin the epoch
}

TelemetrySink::~TelemetrySink() { close(); }

bool TelemetrySink::open(const std::string& path, bool append) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  close_locked();
  std::FILE* out = nullptr;
  bool owns = false;
  if (path == "-") {
    out = stdout;
  } else {
    out = std::fopen(path.c_str(), append ? "a" : "w");
    if (!out) return false;
    owns = true;
  }
  out_ = out;
  owns_file_ = owns;
  running_.store(true, std::memory_order_release);
  drainer_ = std::thread([this] { drain_loop(); });
  accepting_.store(true, std::memory_order_release);
  return true;
}

void TelemetrySink::close() {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  close_locked();
}

void TelemetrySink::close_locked() {
  if (!running_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  if (drainer_.joinable()) drainer_.join();
  // Final drain on this thread: pick up lines that raced past the
  // accepting_ check while the drainer was shutting down.
  drain_available_locked();
  if (out_) {
    std::fflush(out_);
    flushes_.add(1);
    if (owns_file_) std::fclose(out_);
  }
  out_ = nullptr;
  owns_file_ = false;
}

bool TelemetrySink::try_push(std::string&& line) {
  const std::size_t mask = ring_.size() - 1;
  std::size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = ring_[pos & mask];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.line = std::move(line);
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // ring full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool TelemetrySink::try_pop(std::string& out) {
  const std::size_t mask = ring_.size() - 1;
  Slot& slot = ring_[tail_ & mask];
  const std::size_t seq = slot.seq.load(std::memory_order_acquire);
  if (static_cast<std::intptr_t>(seq) -
          static_cast<std::intptr_t>(tail_ + 1) <
      0) {
    return false;  // empty
  }
  out = std::move(slot.line);
  slot.seq.store(tail_ + ring_.size(), std::memory_order_release);
  ++tail_;
  return true;
}

std::size_t TelemetrySink::drain_available_locked() {
  std::size_t n = 0;
  std::string line;
  while (try_pop(line)) {
    if (out_) {
      std::fwrite(line.data(), 1, line.size(), out_);
      std::fputc('\n', out_);
      written_.add(1);
    }
    ++n;
  }
  return n;
}

void TelemetrySink::drain_loop() {
  // Idle sleep backs off 200 us -> 20 ms: a quiet stream costs the
  // producers (who may share the only core) almost no context switches,
  // while a burst snaps the drainer back to its fastest cadence.
  constexpr auto kMinIdle = std::chrono::microseconds(200);
  constexpr auto kMaxIdle = std::chrono::microseconds(20000);
  auto idle = kMinIdle;
  std::string line;
  for (;;) {
    if (paused_.load(std::memory_order_acquire)) {
      if (!running_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(kMinIdle);
      continue;
    }
    std::size_t batch = 0;
    while (try_pop(line)) {
      std::fwrite(line.data(), 1, line.size(), out_);
      std::fputc('\n', out_);
      ++batch;
    }
    if (batch > 0) {
      std::fflush(out_);
      written_.add(batch);
      flushes_.add(1);
      idle = kMinIdle;
      continue;  // more may have arrived while writing
    }
    if (!running_.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(idle);
    idle = std::min(idle * 2, kMaxIdle);
  }
}

bool TelemetrySink::emit(std::string line) {
  // The runtime kill switch silences telemetry too, so disabling obs at
  // runtime is a faithful proxy for compiling it out. Durable sinks
  // (the fleet run journal) are exempt: losing journal lines would cost
  // correctness (resume would re-run completed sessions), not just
  // observability.
  if (!durable_.load(std::memory_order_acquire) && !runtime_enabled()) {
    return false;
  }
  if (!accepting_.load(std::memory_order_acquire)) return false;
  if (!try_push(std::move(line))) {
    dropped_.add(1);
    return false;
  }
  emitted_.add(1);
  return true;
}

bool TelemetrySink::emit_event(const std::string& stream,
                               const std::string& event,
                               json::Value::Object fields) {
  if (!durable_.load(std::memory_order_acquire) && !runtime_enabled()) {
    return false;
  }
  if (!accepting_.load(std::memory_order_acquire)) return false;
  json::Value::Object row;
  row["ts_us"] = static_cast<double>(telemetry_ts_us());
  row["tid"] = static_cast<std::uint64_t>(thread_index());
  row["stream"] = stream;
  row["event"] = event;
  for (auto& [key, value] : fields) row[key] = std::move(value);
  return emit(json::Value(std::move(row)).dump());
}

std::size_t TelemetrySink::emit_metrics_snapshot(
    const MetricsRegistry& registry) {
  if (!runtime_enabled()) return 0;
  if (!accepting_.load(std::memory_order_acquire)) return 0;
  std::size_t queued = 0;
  for (const auto& s : registry.snapshot()) {
    json::Value::Object row;
    row["ts_us"] = static_cast<double>(telemetry_ts_us());
    row["tid"] = static_cast<std::uint64_t>(thread_index());
    row["stream"] = std::string("metrics");
    row["event"] = std::string("sample");
    row["name"] = s.name;
    row["type"] = s.type;
    row["value"] = s.value;
    if (!s.labels.empty()) row["labels"] = s.labels;
    if (s.type == "histogram") {
      row["count"] = static_cast<std::uint64_t>(s.count);
      row["min"] = s.min;
      row["max"] = s.max;
      row["p50"] = s.p50;
      row["p95"] = s.p95;
      row["p99"] = s.p99;
    }
    if (emit(json::Value(std::move(row)).dump())) ++queued;
  }
  return queued;
}

}  // namespace ironic::obs
