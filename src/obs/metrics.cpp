#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <thread>

#include "src/obs/json.hpp"

namespace ironic::obs {

namespace {

// Atomically apply `op` (e.g. +, min, max) to an atomic<double>.
template <typename Op>
void atomic_apply(std::atomic<double>& target, double v, Op op) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, v),
                                       std::memory_order_relaxed)) {
  }
}

// Percentile by linear interpolation inside the containing bucket,
// clamped to the observed range so sparse tails do not report values
// never seen. Shared by Histogram::percentile and the cohort
// aggregation (which merges child buckets before calling it).
double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t count, double lo_seen,
                               double hi_seen, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = std::max(i == 0 ? lo_seen : bounds[i - 1], lo_seen);
      const double upper =
          std::min(i < bounds.size() ? bounds[i] : hi_seen, hi_seen);
      const double frac =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return hi_seen;
}

// Exact percentile over a sorted sample set (cohort scalar metrics):
// linear interpolation between closest ranks.
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

namespace detail {

std::size_t assign_thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void set_runtime_enabled(bool on) {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

std::size_t thread_index() { return detail::thread_ordinal() + 1; }

void Gauge::set(double v) {
  if (!detail::runtime_on()) return;
  // Rebase: zero the shards so value() == v afterwards (a concurrent
  // add() may land before or after the rebase — benign, same contract
  // as the CAS-based predecessor).
  for (auto& cell : cells_) cell.v.store(0.0, std::memory_order_relaxed);
  base_.store(v, std::memory_order_relaxed);
}

void Gauge::add(double d) {
  if (!detail::runtime_on()) return;
  atomic_apply(cells_[detail::shard_slot()].v, d,
               [](double a, double b) { return a + b; });
}

void Gauge::set_max(double v) {
  if (!detail::runtime_on()) return;
  // Raise the base until the combined value is at least v. Approximate
  // under concurrent add() (the shard sum can move between the read and
  // the CAS); exact for the single-writer high-water-mark use it serves.
  double cur = base_.load(std::memory_order_relaxed);
  for (;;) {
    double shards = 0.0;
    for (const auto& cell : cells_) {
      shards += cell.v.load(std::memory_order_relaxed);
    }
    if (cur + shards >= v) return;
    if (base_.compare_exchange_weak(cur, v - shards,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

// One thread's slice of a histogram, allocated on first observation so
// idle metrics cost one pointer array. The bucket vector never resizes
// after construction, so element addresses are stable for readers.
struct Histogram::Shard {
  explicit Shard(std::size_t n_buckets)
      : buckets(n_buckets),
        min(std::numeric_limits<double>::infinity()),
        max(-std::numeric_limits<double>::infinity()) {}
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min;
  std::atomic<double> max;
};

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_histogram_bounds();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    std::sort(bounds_.begin(), bounds_.end());
  }
}

Histogram::~Histogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

Histogram::Shard& Histogram::shard() {
  auto& slot = shards_[detail::shard_slot()];
  Shard* existing = slot.load(std::memory_order_acquire);
  if (existing) return *existing;
  auto* fresh = new Shard(bounds_.size() + 1);
  Shard* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *fresh;
  }
  // Another thread hashed onto the same slot and won the install race.
  delete fresh;
  return *expected;
}

void Histogram::observe(double v) {
  if (!detail::runtime_on()) return;
  Shard& s = shard();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_apply(s.sum, v, [](double a, double b) { return a + b; });
  atomic_apply(s.min, v, [](double a, double b) { return a < b ? a : b; });
  atomic_apply(s.max, v, [](double a, double b) { return a > b ? a : b; });
}

Histogram::Merged Histogram::merged() const {
  const std::size_t n_buckets = bounds_.size() + 1;
  for (;;) {
    const std::uint64_t before = epoch_.load(std::memory_order_acquire);
    if (before & 1) {
      // A reset is zeroing the shards; wait for the even epoch.
      std::this_thread::yield();
      continue;
    }
    Merged m;
    m.buckets.assign(n_buckets, 0);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& slot : shards_) {
      const Shard* s = slot.load(std::memory_order_acquire);
      if (!s) continue;
      for (std::size_t i = 0; i < n_buckets; ++i) {
        m.buckets[i] += s->buckets[i].load(std::memory_order_relaxed);
      }
      m.count += s->count.load(std::memory_order_relaxed);
      m.sum += s->sum.load(std::memory_order_relaxed);
      lo = std::min(lo, s->min.load(std::memory_order_relaxed));
      hi = std::max(hi, s->max.load(std::memory_order_relaxed));
    }
    // Re-check via a dummy RMW: its release half keeps the shard loads
    // above from sinking past this point (a plain atomic_thread_fence
    // is not instrumented by -fsanitize=thread).
    if (epoch_.fetch_add(0, std::memory_order_acq_rel) != before) continue;
    m.min = (m.count == 0 || std::isinf(lo)) ? 0.0 : lo;
    m.max = (m.count == 0 || std::isinf(hi)) ? 0.0 : hi;
    return m;
  }
}

double Histogram::mean() const {
  const Merged m = merged();
  return m.count == 0 ? 0.0 : m.sum / static_cast<double>(m.count);
}

double Histogram::percentile(double p) const {
  const Merged m = merged();
  return percentile_from_buckets(bounds_, m.buckets, m.count, m.min, m.max, p);
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(reset_mutex_);
  // Odd epoch: merges that started earlier retry; merges that start now
  // spin until the zeroing below is complete, so nobody observes a
  // half-zeroed histogram.
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& slot : shards_) {
    Shard* s = slot.load(std::memory_order_acquire);
    if (!s) continue;
    for (auto& bucket : s->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    s->count.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->min.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    s->max.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsRegistry::label_string() const {
  std::string out;
  for (const auto& [k, v] : labels_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::shared_ptr<MetricsRegistry> MetricsRegistry::scoped(Labels extra) {
  Labels combined = labels_;
  for (auto& kv : extra) combined.push_back(std::move(kv));
  auto child = std::make_shared<MetricsRegistry>(std::move(combined));
  const std::lock_guard<std::mutex> lock(children_mutex_);
  children_.push_back(child);
  return child;
}

std::vector<CohortAggregate> MetricsRegistry::aggregate_cohorts() const {
  // Pin the live children first; expired ones are pruned in passing.
  std::vector<std::shared_ptr<MetricsRegistry>> children;
  {
    const std::lock_guard<std::mutex> lock(children_mutex_);
    std::vector<std::weak_ptr<MetricsRegistry>> live;
    live.reserve(children_.size());
    for (const auto& weak : children_) {
      if (auto strong = weak.lock()) {
        children.push_back(std::move(strong));
        live.push_back(weak);
      }
    }
    children_.swap(live);
  }

  // Scalar metrics contribute one sample per session; histograms merge
  // buckets when every child shares the bounds, else fall back to the
  // per-session means as a scalar sample set.
  struct ScalarAgg {
    std::string type;
    std::vector<double> samples;
  };
  struct HistAgg {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t sessions = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<double> means;  // fallback when bounds differ
    bool mixed_bounds = false;
  };
  std::map<std::string, ScalarAgg> scalars;
  std::map<std::string, HistAgg> hists;

  for (const auto& child : children) {
    const std::lock_guard<std::mutex> lock(child->mutex_);
    for (const auto& [name, c] : child->counters_) {
      auto& agg = scalars[name];
      agg.type = "counter";
      agg.samples.push_back(static_cast<double>(c->value()));
    }
    for (const auto& [name, g] : child->gauges_) {
      auto& agg = scalars[name];
      agg.type = "gauge";
      agg.samples.push_back(g->value());
    }
    for (const auto& [name, h] : child->histograms_) {
      auto& agg = hists[name];
      const Histogram::Merged m = h->merged();
      if (agg.sessions == 0) {
        agg.bounds = h->bounds();
        agg.buckets.assign(m.buckets.size(), 0);
      } else if (agg.bounds != h->bounds()) {
        agg.mixed_bounds = true;
      }
      ++agg.sessions;
      if (!agg.mixed_bounds) {
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          agg.buckets[i] += m.buckets[i];
        }
      }
      agg.count += m.count;
      agg.sum += m.sum;
      if (m.count > 0) {
        agg.min = std::min(agg.min, m.min);
        agg.max = std::max(agg.max, m.max);
        agg.means.push_back(m.sum / static_cast<double>(m.count));
      }
    }
  }

  std::vector<CohortAggregate> out;
  out.reserve(scalars.size() + hists.size());
  for (auto& [name, agg] : scalars) {
    CohortAggregate row;
    row.name = name;
    row.type = agg.type;
    row.sessions = agg.samples.size();
    row.count = agg.samples.size();
    std::sort(agg.samples.begin(), agg.samples.end());
    for (const double v : agg.samples) row.sum += v;
    row.min = agg.samples.front();
    row.max = agg.samples.back();
    row.mean = row.sum / static_cast<double>(agg.samples.size());
    row.p50 = sorted_percentile(agg.samples, 50.0);
    row.p95 = sorted_percentile(agg.samples, 95.0);
    row.p99 = sorted_percentile(agg.samples, 99.0);
    out.push_back(std::move(row));
  }
  for (auto& [name, agg] : hists) {
    CohortAggregate row;
    row.name = name;
    row.type = "histogram";
    row.sessions = agg.sessions;
    row.count = agg.count;
    row.sum = agg.sum;
    row.min = std::isinf(agg.min) ? 0.0 : agg.min;
    row.max = std::isinf(agg.max) ? 0.0 : agg.max;
    row.mean = agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count);
    if (!agg.mixed_bounds) {
      row.p50 = percentile_from_buckets(agg.bounds, agg.buckets, agg.count,
                                        row.min, row.max, 50.0);
      row.p95 = percentile_from_buckets(agg.bounds, agg.buckets, agg.count,
                                        row.min, row.max, 95.0);
      row.p99 = percentile_from_buckets(agg.bounds, agg.buckets, agg.count,
                                        row.min, row.max, 99.0);
    } else {
      std::sort(agg.means.begin(), agg.means.end());
      row.p50 = sorted_percentile(agg.means, 50.0);
      row.p95 = sorted_percentile(agg.means, 95.0);
      row.p99 = sorted_percentile(agg.means, 99.0);
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const CohortAggregate& a, const CohortAggregate& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::publish_cohorts(const std::string& prefix) {
  publish_cohorts(prefix, *this);
}

void MetricsRegistry::publish_cohorts(const std::string& prefix,
                                      MetricsRegistry& into) const {
  for (const auto& agg : aggregate_cohorts()) {
    const std::string base =
        prefix.empty() ? agg.name : prefix + "." + agg.name;
    into.gauge(base + ".sessions").set(static_cast<double>(agg.sessions));
    into.gauge(base + ".count").set(static_cast<double>(agg.count));
    into.gauge(base + ".sum").set(agg.sum);
    into.gauge(base + ".min").set(agg.min);
    into.gauge(base + ".max").set(agg.max);
    into.gauge(base + ".mean").set(agg.mean);
    into.gauge(base + ".p50").set(agg.p50);
    into.gauge(base + ".p95").set(agg.p95);
    into.gauge(base + ".p99").set(agg.p99);
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string labels = label_string();
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.type = "counter";
    s.labels = labels;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.type = "gauge";
    s.labels = labels;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.type = "histogram";
    s.labels = labels;
    const Histogram::Merged m = h->merged();
    s.value = m.count == 0 ? 0.0 : m.sum / static_cast<double>(m.count);
    s.count = m.count;
    s.min = m.min;
    s.max = m.max;
    s.p50 = percentile_from_buckets(h->bounds(), m.buckets, m.count, m.min,
                                    m.max, 50.0);
    s.p95 = percentile_from_buckets(h->bounds(), m.buckets, m.count, m.min,
                                    m.max, 95.0);
    s.p99 = percentile_from_buckets(h->bounds(), m.buckets, m.count, m.min,
                                    m.max, 99.0);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& s : snapshot()) {
    os << "{\"name\":\"" << json::escape(s.name) << "\",\"type\":\"" << s.type
       << "\",\"value\":" << json::number(s.value);
    if (!s.labels.empty()) {
      os << ",\"labels\":\"" << json::escape(s.labels) << "\"";
    }
    if (s.type == "histogram") {
      os << ",\"count\":" << s.count << ",\"min\":" << json::number(s.min)
         << ",\"max\":" << json::number(s.max)
         << ",\"p50\":" << json::number(s.p50)
         << ",\"p95\":" << json::number(s.p95)
         << ",\"p99\":" << json::number(s.p99);
    }
    os << "}\n";
  }
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<double> default_histogram_bounds() {
  std::vector<double> bounds;
  bounds.reserve(3 * 19);
  for (int decade = -9; decade <= 9; ++decade) {
    const double base = std::pow(10.0, decade);
    bounds.push_back(base);
    bounds.push_back(2.0 * base);
    bounds.push_back(5.0 * base);
  }
  return bounds;
}

}  // namespace ironic::obs
