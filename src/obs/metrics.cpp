#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "src/obs/json.hpp"

namespace ironic::obs {

namespace {

// Atomically apply `op` (e.g. +, min, max) to an atomic<double>.
template <typename Op>
void atomic_apply(std::atomic<double>& target, double v, Op op) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, v), std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double d) {
  atomic_apply(value_, d, [](double a, double b) { return a + b; });
}

void Gauge::set_max(double v) {
  atomic_apply(value_, v, [](double a, double b) { return a > b ? a : b; });
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) bounds_ = default_histogram_bounds();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    std::sort(bounds_.begin(), bounds_.end());
  }
  if (buckets_.size() != bounds_.size() + 1) {
    // bounds_ may have been replaced by the default ladder above.
    std::vector<std::atomic<std::uint64_t>> fresh(bounds_.size() + 1);
    buckets_.swap(fresh);
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_apply(sum_, v, [](double a, double b) { return a + b; });
  atomic_apply(min_, v, [](double a, double b) { return a < b ? a : b; });
  atomic_apply(max_, v, [](double a, double b) { return a > b ? a : b; });
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(n);
  const double lo_seen = min();
  const double hi_seen = max();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Interpolate inside this bucket, clamped to the observed range so
      // sparse tails do not report values never seen.
      const double lower = std::max(i == 0 ? lo_seen : bounds_[i - 1], lo_seen);
      const double upper = std::min(i < bounds_.size() ? bounds_[i] : hi_seen, hi_seen);
      const double frac = std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return hi_seen;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.type = "counter";
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.type = "gauge";
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.type = "histogram";
    s.value = h->mean();
    s.count = h->count();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->percentile(50.0);
    s.p95 = h->percentile(95.0);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& s : snapshot()) {
    os << "{\"name\":\"" << json::escape(s.name) << "\",\"type\":\"" << s.type
       << "\",\"value\":" << json::number(s.value);
    if (s.type == "histogram") {
      os << ",\"count\":" << s.count << ",\"min\":" << json::number(s.min)
         << ",\"max\":" << json::number(s.max) << ",\"p50\":" << json::number(s.p50)
         << ",\"p95\":" << json::number(s.p95);
    }
    os << "}\n";
  }
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<double> default_histogram_bounds() {
  std::vector<double> bounds;
  bounds.reserve(3 * 19);
  for (int decade = -9; decade <= 9; ++decade) {
    const double base = std::pow(10.0, decade);
    bounds.push_back(base);
    bounds.push_back(2.0 * base);
    bounds.push_back(5.0 * base);
  }
  return bounds;
}

}  // namespace ironic::obs
