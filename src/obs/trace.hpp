// Trace spans and a Chrome trace_event-format recorder.
//
// Two timelines share one trace file so it opens directly in
// chrome://tracing or Perfetto:
//   pid 1 "wall clock"      — RAII Span complete events, real time in us
//   pid 2 "simulation time" — sim_span/sim_instant events whose timestamps
//                             are *simulated* microseconds (charge-up
//                             phase, ASK/LSK bursts, bit decisions)
//
// Recording is off by default; when off, Span construction is a single
// relaxed atomic load and no clock is read. Enable programmatically with
// TraceRecorder::instance().enable() or via IRONIC_TRACE=<path> handled
// by obs::RunReport.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"  // IRONIC_OBS_ENABLED / kEnabled

namespace ironic::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';   // 'X' complete, 'i' instant, 'C' counter,
                      // 's'/'f' flow start/finish
  double ts_us = 0.0;
  double dur_us = 0.0;  // complete events only
  int pid = 1;
  // Chrome-trace thread track: obs::thread_index() of the recording
  // thread for wall-clock events, 1 for the simulation timeline.
  int tid = 1;
  std::uint64_t flow_id = 0;  // flow events only; pairs 's' with 'f'
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds on the wall-clock timeline (steady clock, process epoch).
  double now_us() const;

  // Wall-clock events (pid 1). `duration_event` timestamps are supplied by
  // the caller (Span does this).
  void complete_event(std::string name, std::string category, double ts_us,
                      double dur_us,
                      std::vector<std::pair<std::string, std::string>> args = {});
  void instant_event(std::string name, std::string category,
                     std::vector<std::pair<std::string, std::string>> args = {});
  void counter_event(std::string name, double value);

  // Flow events tie spans on different threads together in the viewer:
  // emit flow_begin on the dispatching thread and flow_end (binding
  // point "enclosing slice") inside the span that executes the work,
  // with the same `id`. The sweep engine uses one flow per point so a
  // point's dispatch and execution connect across pool threads.
  void flow_begin(std::string name, std::string category, std::uint64_t id);
  void flow_end(std::string name, std::string category, std::uint64_t id);

  // Simulation-timeline events (pid 2); timestamps are simulated seconds,
  // converted to microseconds for the trace viewer.
  void sim_span(std::string name, std::string category, double t_start_s,
                double t_end_s,
                std::vector<std::pair<std::string, std::string>> args = {});
  void sim_instant(std::string name, std::string category, double t_s,
                   std::vector<std::pair<std::string, std::string>> args = {});

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;  // copy, for tests
  void clear();

  // Emit the Chrome trace_event JSON ({"traceEvents":[...]}) including
  // process-name metadata for the two timelines.
  void write_chrome_trace(std::ostream& os) const;
  // Convenience: write to a file; returns false (and logs) on I/O error.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  TraceRecorder();
  void push(TraceEvent ev);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

#if IRONIC_OBS_ENABLED

// RAII wall-clock span: records a complete event on destruction when the
// recorder was enabled at construction.
class Span {
 public:
  explicit Span(std::string name, std::string category = "app");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // Attach a key/value argument shown in the trace viewer.
  void arg(std::string key, std::string value);
  // End the span now instead of at scope exit (idempotent).
  void end();

 private:
  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  bool active_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

// RAII timer accumulating elapsed nanoseconds into a Counter — the
// cheap always-on primitive for hot paths (two steady_clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& sink_ns)
      : sink_(&sink_ns), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Counter* sink_;
  std::chrono::steady_clock::time_point start_;
};

#else  // !IRONIC_OBS_ENABLED — zero-cost stand-ins

class Span {
 public:
  explicit Span(std::string, std::string = {}) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void arg(std::string, std::string) {}
  void end() {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Counter&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // IRONIC_OBS_ENABLED

// Route util::Log::event(...) structured records into the observability
// subsystem: each event becomes a trace instant (when recording) and
// bumps the "log.events.<component>" counter. Idempotent.
void install_log_bridge();

}  // namespace ironic::obs
