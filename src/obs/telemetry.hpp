// Streaming JSONL telemetry sink: a bounded MPSC ring buffer drained by
// a background thread into a file (or stdout). Producers never block —
// when the ring is full the line is dropped and obs.telemetry.dropped
// is incremented, so a slow disk can never stall the simulation hot
// path. The drainer batches writes and fflushes once per batch; close()
// (and the destructor, for flush-on-exit) drains whatever is queued
// before the stream goes away.
//
// Wire-ins: metrics snapshots (emit_metrics_snapshot), structured log
// events (the trace log bridge forwards util::Log events here when the
// sink is open), fault::Session state transitions, and ad-hoc
// emit_event calls. Every line is one self-contained JSON object with
// at least {"ts_us":..., "tid":..., "stream":..., "event":...} so
// `telemetry_tail` can filter without schema knowledge.
//
// Counters (root registry): obs.telemetry.emitted / dropped / written /
// flushes. They are final once close() has returned, which is why the
// runners close the sink explicitly before the run report snapshots the
// registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"

namespace ironic::obs {

// Ring capacity in lines (power of two). At ~200 B/line this is ~800 KiB
// of queued telemetry before drops begin.
inline constexpr std::size_t kTelemetryRingCapacity = 4096;

class TelemetrySink {
 public:
  // Process-wide sink used by all instrumentation wire-ins.
  static TelemetrySink& instance();

  TelemetrySink();
  ~TelemetrySink();  // flush-on-exit: equivalent to close()
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // Open the output stream ("-" = stdout) and start the drainer.
  // Returns false (sink stays closed) if the path cannot be opened —
  // the runners map that to exit code 2. Reopening closes the previous
  // stream first. `append` opens an existing file for appending instead
  // of truncating (the fleet run journal's --resume path).
  bool open(const std::string& path, bool append = false);
  bool is_open() const { return accepting_.load(std::memory_order_acquire); }

  // A durable sink ignores the obs runtime kill switch: the fleet run
  // journal must record every terminal session outcome even when the
  // process has silenced telemetry, or a resume would re-run (and a
  // crash would lose) sessions that already completed.
  void set_durable(bool durable) {
    durable_.store(durable, std::memory_order_release);
  }

  // Stop accepting, drain the ring, flush, and close the stream. After
  // close() returns the obs.telemetry.* counters are final. Safe to
  // call repeatedly; a no-op when never opened.
  void close();

  // Enqueue one pre-rendered JSON line (no trailing newline). Returns
  // true if queued; false when the sink is closed or the runtime kill
  // switch is off (not counted), or the ring is full (counted in
  // obs.telemetry.dropped). Never blocks.
  bool emit(std::string line);

  // Render {"ts_us":...,"tid":...,"stream":stream,"event":event,...fields}
  // and emit it.
  bool emit_event(const std::string& stream, const std::string& event,
                  json::Value::Object fields = {});

  // Stream a registry snapshot, one line per metric on stream
  // "metrics" (labels included for scoped registries). Returns the
  // number of lines queued (drops excluded).
  std::size_t emit_metrics_snapshot(const MetricsRegistry& registry);

  // Test hook: while paused the drainer parks without popping, so tests
  // can fill the ring to overflow deterministically. Unpausing (or
  // close()) drains normally.
  void set_paused_for_test(bool paused) {
    paused_.store(paused, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    std::string line;
  };

  bool try_push(std::string&& line);
  bool try_pop(std::string& out);
  void drain_loop();
  std::size_t drain_available_locked();
  void close_locked();

  std::vector<Slot> ring_;
  std::atomic<std::size_t> head_{0};  // multi-producer cursor
  std::size_t tail_ = 0;              // drainer-private cursor

  std::mutex control_mutex_;  // open/close/stream-pointer transitions
  std::FILE* out_ = nullptr;
  bool owns_file_ = false;
  std::thread drainer_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> durable_{false};

  Counter& emitted_;
  Counter& dropped_;
  Counter& written_;
  Counter& flushes_;
};

}  // namespace ironic::obs
