// Minimal JSON value model used by the observability subsystem: the
// trace recorder and run-report writers emit JSON, and the tests (plus
// tools/trace_validate) parse it back to prove well-formedness. This is
// deliberately small — objects are std::map (deterministic key order in
// output), numbers are double — and is not meant as a general-purpose
// JSON library.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ironic::obs::json {

struct JsonError : std::runtime_error {
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

// Escape a string for inclusion between double quotes in a JSON document.
std::string escape(std::string_view s);
// Format a double the way JSON requires: finite values round-trip via
// max_digits10; NaN/Inf (illegal in JSON) become null.
std::string number(double v);

class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : data_(static_cast<double>(u)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_double() const { return get<double>("number"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Array& as_array() { return get<Array>("array"); }
  Object& as_object() { return get<Object>("object"); }

  // Object access; throws JsonError on missing key or wrong type.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  // Array access.
  const Value& at(std::size_t index) const;
  std::size_t size() const;

  // Serialize. indent < 0 -> compact single line; otherwise pretty-print
  // with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  // Parse a complete JSON document (trailing whitespace allowed, trailing
  // garbage is an error). Throws JsonError on malformed input.
  static Value parse(std::string_view text);

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&data_)) return *p;
    throw JsonError(std::string("json: value is not a ") + what);
  }
  template <typename T>
  T& get(const char* what) {
    if (T* p = std::get_if<T>(&data_)) return *p;
    throw JsonError(std::string("json: value is not a ") + what);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

}  // namespace ironic::obs::json
