// Subsystem wall-time profiler: scoped PROF_ZONE("spice.lu_factor")
// zones aggregate inclusive and exclusive time per zone per thread, so
// a run report can answer "87 ms of 165 ms went to LU" as a first-class
// breakdown instead of a one-off measurement.
//
// Zone naming convention: "<subsystem>.<operation>" with the subsystem
// matching the source directory (spice.stamp, spice.lu_factor,
// spice.lu_solve, spice.newton, comms.exchange, exec.sweep_point).
//
// Cost model: a timed zone entry reads a TSC-class clock and pushes one
// frame on a thread-local stack; leaving pops it and does three relaxed
// load+store adds into thread-private stats. There is no lock and no
// allocation on the hot path (first use of a zone on a thread may grow
// the per-thread table under that thread's own mutex). Because even a
// raw TSC read can cost ~20 ns on virtualized hardware, hot zones decay
// to sampled timing: the first kProfExactCalls calls of a zone on a
// thread are timed exactly, after which only every kProfSamplePeriod-th
// call is timed and its duration scaled by the period. Call counts stay
// exact; inclusive/exclusive times for >kProfExactCalls-call zones are
// statistically representative rather than exact, which keeps a
// 100k-iteration Newton loop's instrumentation under the overhead
// budget bench_obs_overhead enforces. Under IRONIC_OBS_ENABLED=OFF the
// PROF_ZONE macro compiles to nothing; the snapshot API stays available
// and returns empty reports. The runtime kill switch
// (obs::set_runtime_enabled(false)) also disarms zones.
//
// Aggregates mirror into the metrics registry as gauges named
// prof.<zone>.{calls,inclusive_ns,exclusive_ns} — gauges so mirroring
// is idempotent — which is what `trace_validate --require` pins in CI.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"

namespace ironic::obs {

// Aggregated view of one zone across all threads that entered it.
struct ZoneReport {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t inclusive_ns = 0;  // zone body including nested zones
  std::uint64_t exclusive_ns = 0;  // zone body minus nested zones
  std::uint32_t threads = 0;       // threads that entered the zone
};

// Zones entered so far, ordered by descending inclusive time. In-flight
// zones (entered, not yet left) are not counted.
std::vector<ZoneReport> profiler_snapshot();

// Zero every per-thread zone accumulator (bench legs call this between
// configurations). Does not unwind in-flight zones.
void profiler_reset();

// Fold profiler_snapshot() into `registry` as prof.<zone>.* gauges.
void profiler_mirror_to_registry(MetricsRegistry& registry);

// Sampling schedule per (zone, thread): calls [0, kProfExactCalls) are
// timed exactly; afterwards one call in kProfSamplePeriod is timed and
// scaled. Rarely-entered zones (tests, comms.exchange) therefore report
// exact times.
inline constexpr std::uint64_t kProfExactCalls = 64;
inline constexpr std::uint32_t kProfSamplePeriod = 16;

#if IRONIC_OBS_ENABLED

// Interned zone handle; obtained once per call site via a magic static.
struct ZoneId {
  std::uint32_t index;
};

ZoneId register_zone(const char* name);

namespace detail {

// Monotonic tick source: TSC on x86-64 (converted to wall ns at
// snapshot time via calibration against the steady clock);
// steady_clock nanoseconds elsewhere.
inline std::uint64_t prof_now_ticks() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Per-thread zone accumulators. Owner-thread writes are relaxed
// load+store adds (no other writer); the snapshot thread reads them
// under the profile mutex, which the owner takes only to grow the
// table. A deque keeps element addresses stable across growth.
struct ThreadProfile {
  struct ZoneStats {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> inclusive{0};
    std::atomic<std::uint64_t> exclusive{0};
    // Owner-thread-only sampling state (never read by the snapshot):
    std::uint64_t exact = 0;      // calls timed in the exact phase
    std::uint32_t countdown = 0;  // calls until the next timed sample
  };
  struct Frame {
    std::uint32_t zone;
    std::uint64_t start;
    std::uint64_t child;  // full-unit ticks spent in nested zones
    std::uint64_t scale;  // 1 exact, kProfSamplePeriod when sampling
  };

  std::mutex mutex;
  std::deque<ZoneStats> zones;
  std::vector<Frame> stack;  // owner-thread only
};

// Registers the calling thread's profile on first use and grows its
// zone table to cover `index`; caches the profile in t_profile.
ThreadProfile& prepare_zone(std::uint32_t index);

// Cached per-thread profile; null until the thread's first timed zone.
inline thread_local ThreadProfile* t_profile = nullptr;

}  // namespace detail

class ZoneScope {
 public:
  // The common case — a zone counted but not timed this call — stays
  // inline: one relaxed flag load, one TLS load, a counter bump, and a
  // countdown decrement. Timed entries fall through to the tick read.
  explicit ZoneScope(ZoneId id) {
    if (!runtime_enabled()) return;
    auto* profile = detail::t_profile;
    if (profile == nullptr || id.index >= profile->zones.size()) {
      profile = &detail::prepare_zone(id.index);
    }
    auto& z = profile->zones[id.index];
    // Owner-only writer: relaxed load+store instead of fetch_add keeps
    // this a plain add (no lock prefix) while the snapshot thread still
    // gets tear-free relaxed reads.
    z.calls.store(z.calls.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    std::uint64_t scale;
    if (z.exact < kProfExactCalls) {
      ++z.exact;
      scale = 1;
    } else if (z.countdown == 0) {
      z.countdown = kProfSamplePeriod - 1;
      scale = kProfSamplePeriod;
    } else {
      --z.countdown;
      return;  // counted, not timed — profile_ stays null, dtor no-ops
    }
    profile->stack.push_back({id.index, detail::prof_now_ticks(), 0, scale});
    profile_ = profile;
  }
  ~ZoneScope() {
    if (profile_ != nullptr) finish();
  }
  ZoneScope(const ZoneScope&) = delete;
  ZoneScope& operator=(const ZoneScope&) = delete;

 private:
  void finish();  // pops the frame and folds the timings in

  detail::ThreadProfile* profile_ = nullptr;  // null when disarmed
};

#define IRONIC_PROF_CONCAT2(a, b) a##b
#define IRONIC_PROF_CONCAT(a, b) IRONIC_PROF_CONCAT2(a, b)
#define PROF_ZONE(name_literal)                                             \
  static const ::ironic::obs::ZoneId IRONIC_PROF_CONCAT(                    \
      ironic_prof_zone_, __LINE__) =                                        \
      ::ironic::obs::register_zone(name_literal);                           \
  const ::ironic::obs::ZoneScope IRONIC_PROF_CONCAT(ironic_prof_scope_,     \
                                                    __LINE__)(              \
      IRONIC_PROF_CONCAT(ironic_prof_zone_, __LINE__))

#else  // !IRONIC_OBS_ENABLED

#define PROF_ZONE(name_literal) static_cast<void>(0)

#endif  // IRONIC_OBS_ENABLED

}  // namespace ironic::obs
