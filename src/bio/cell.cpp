#include "src/bio/cell.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::bio {

EnzymeParams clodx_params() {
  // Fit to the upper Fig. 4 curve: ~4.2 uA/cm^2 at 1 mM, ~1 uA/cm^2 at
  // 0.16 mM. j in A/m^2: 1 uA/cm^2 == 1e-2 A/m^2.
  EnzymeParams p;
  p.name = "cLODx";
  p.j_max = 9.0e-2;   // 9 uA/cm^2 saturation
  p.km = 1.15;        // mM
  p.mwcnt_gain = 1.0; // gain folded into j_max for the MWCNT electrodes
  return p;
}

EnzymeParams wtlodx_params() {
  // Lower Fig. 4 curve: ~1.6 uA/cm^2 at 1 mM.
  EnzymeParams p;
  p.name = "wtLODx";
  p.j_max = 3.6e-2;
  p.km = 1.25;
  p.mwcnt_gain = 1.0;
  return p;
}

EnzymeParams clodx_bare_params() {
  // Without MWCNTs the sensitivity drops several-fold (refs [20,21]).
  EnzymeParams p = clodx_params();
  p.name = "cLODx (no MWCNT)";
  p.mwcnt_gain = 0.3;
  return p;
}

EnzymeParams gox_params() {
  // Glucose oxidase on the same MWCNT screen-printed electrodes:
  // physiological glycemia spans ~4-10 mM, so Km sits higher than the
  // lactate enzymes'.
  EnzymeParams p;
  p.name = "GOx";
  p.j_max = 12.0e-2;
  p.km = 8.0;
  return p;
}

ElectrochemicalCell::ElectrochemicalCell(EnzymeParams enzyme, ElectrodeGeometry geometry,
                                         RandlesParams randles)
    : enzyme_(std::move(enzyme)), geometry_(geometry), randles_(randles) {
  if (enzyme_.j_max <= 0.0 || enzyme_.km <= 0.0 || enzyme_.mwcnt_gain <= 0.0) {
    throw std::invalid_argument("ElectrochemicalCell: invalid enzyme parameters");
  }
  if (geometry_.area <= 0.0) {
    throw std::invalid_argument("ElectrochemicalCell: electrode area must be > 0");
  }
}

double ElectrochemicalCell::current_density(double concentration) const {
  if (concentration < 0.0) {
    throw std::invalid_argument("ElectrochemicalCell: concentration must be >= 0");
  }
  return enzyme_.mwcnt_gain * enzyme_.j_max * concentration /
         (enzyme_.km + concentration);
}

double ElectrochemicalCell::current_density(double concentration,
                                            double temperature) const {
  if (temperature <= 0.0) {
    throw std::invalid_argument("ElectrochemicalCell: temperature must be > 0 K");
  }
  const double activity =
      std::pow(enzyme_.q10, (temperature - enzyme_.t_ref) / 10.0);
  return current_density(concentration) * activity;
}

double ElectrochemicalCell::current(double concentration) const {
  return current_density(concentration) * geometry_.area;
}

double ElectrochemicalCell::current(double concentration, double temperature) const {
  return current_density(concentration, temperature) * geometry_.area;
}

double ElectrochemicalCell::delta_current_density_ua_cm2(double concentration) const {
  // 1 A/m^2 == 100 uA/cm^2.
  return current_density(concentration) * 100.0;
}

double ElectrochemicalCell::concentration_from_current(double i_we) const {
  if (i_we < 0.0) {
    throw std::invalid_argument("concentration_from_current: current must be >= 0");
  }
  const double j = i_we / geometry_.area;
  const double j_sat = enzyme_.mwcnt_gain * enzyme_.j_max;
  if (j >= j_sat) {
    throw std::invalid_argument("concentration_from_current: current beyond saturation");
  }
  return enzyme_.km * j / (j_sat - j);
}

double chronoamperometric_current(const ElectrochemicalCell& cell,
                                  double concentration, double t,
                                  ChronoamperometryParams params) {
  if (t <= 0.0) throw std::invalid_argument("chronoamperometric_current: t must be > 0");
  if (params.diffusion_time <= 0.0) {
    throw std::invalid_argument("chronoamperometric_current: t_d must be > 0");
  }
  const double i_ss = cell.current(concentration);
  return i_ss * (1.0 + std::sqrt(params.diffusion_time / t));
}

double settling_time_for_tolerance(double tolerance, ChronoamperometryParams params) {
  if (tolerance <= 0.0 || params.diffusion_time <= 0.0) {
    throw std::invalid_argument("settling_time_for_tolerance: bad arguments");
  }
  // (1 + sqrt(td/t)) <= 1 + tol  ->  t >= td / tol^2.
  return params.diffusion_time / (tolerance * tolerance);
}

std::vector<CalibrationPoint> calibration_curve(const ElectrochemicalCell& cell,
                                                double c_min_mM, double c_max_mM,
                                                int n) {
  if (n < 2 || c_min_mM <= 0.0 || c_max_mM <= c_min_mM) {
    throw std::invalid_argument("calibration_curve: bad sweep parameters");
  }
  std::vector<CalibrationPoint> points;
  points.reserve(static_cast<std::size_t>(n));
  const double log_min = std::log10(c_min_mM);
  const double log_max = std::log10(c_max_mM);
  for (int i = 0; i < n; ++i) {
    const double lg = log_min + (log_max - log_min) * i / (n - 1);
    const double c = std::pow(10.0, lg);
    points.push_back({lg, cell.delta_current_density_ua_cm2(c)});
  }
  return points;
}

}  // namespace ironic::bio
