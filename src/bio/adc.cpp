#include "src/bio/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ironic::bio {

int SigmaDeltaModulator::step(double x) {
  // CIFB with 0.5 loop gains: stable for |x| <~ 0.9.
  const double fb = static_cast<double>(y_);
  s1_ += 0.5 * (x - fb);
  s2_ += 0.5 * (s1_ - fb);
  y_ = s2_ >= 0.0 ? 1 : -1;
  return y_;
}

void SigmaDeltaModulator::reset() {
  s1_ = 0.0;
  s2_ = 0.0;
  y_ = 1;
}

double SigmaDeltaModulator::integrator_magnitude() const {
  return std::max(std::abs(s1_), std::abs(s2_));
}

Sinc3Decimator::Sinc3Decimator(int decimation_ratio) : ratio_(decimation_ratio) {
  if (ratio_ < 2) throw std::invalid_argument("Sinc3Decimator: ratio must be >= 2");
}

bool Sinc3Decimator::push(double sample) {
  i1_ += sample;
  i2_ += i1_;
  i3_ += i2_;
  if (++phase_ < ratio_) return false;
  phase_ = 0;
  // Comb cascade at the decimated rate.
  const double d1 = i3_ - c1_;
  c1_ = i3_;
  const double d2 = d1 - c2_;
  c2_ = d1;
  const double d3 = d2 - c3_;
  c3_ = d2;
  const double r3 = static_cast<double>(ratio_) * ratio_ * ratio_;
  output_ = d3 / r3;
  primed_ = true;
  // The first two outputs carry the filter's startup transient.
  return ++outputs_seen_ > 2;
}

void Sinc3Decimator::reset() {
  phase_ = 0;
  i1_ = i2_ = i3_ = 0.0;
  c1_ = c2_ = c3_ = 0.0;
  output_ = 0.0;
  primed_ = false;
  outputs_seen_ = 0;
}

SigmaDeltaAdc::SigmaDeltaAdc(AdcSpec spec, std::uint64_t noise_seed)
    : spec_(spec), decimator_(spec.oversampling_ratio), noise_(noise_seed) {
  if (spec_.bits < 2 || spec_.bits > 24 || spec_.full_scale_current <= 0.0 ||
      spec_.average_outputs < 1 || spec_.settle_outputs < 0) {
    throw std::invalid_argument("SigmaDeltaAdc: invalid spec");
  }
}

double SigmaDeltaAdc::convert_normalized(double x) {
  if (x < -0.95 || x > 0.95) {
    throw std::invalid_argument("SigmaDeltaAdc: input outside stable range");
  }
  modulator_.reset();
  decimator_.reset();
  int outputs = 0;
  int averaged = 0;
  double sum = 0.0;
  // Run until settle + average outputs have been produced.
  const int needed = spec_.settle_outputs + spec_.average_outputs;
  while (averaged < spec_.average_outputs) {
    const double noisy = x + (spec_.input_noise_rms > 0.0
                                  ? noise_.normal(0.0, spec_.input_noise_rms)
                                  : 0.0);
    if (decimator_.push(modulator_.step(noisy))) {
      ++outputs;
      if (outputs > spec_.settle_outputs) {
        sum += decimator_.output();
        ++averaged;
      }
    }
    if (outputs > needed + 8) break;  // safety (cannot normally trigger)
  }
  return sum / spec_.average_outputs;
}

std::uint32_t SigmaDeltaAdc::convert_current(double current) {
  if (current < 0.0 || current > spec_.full_scale_current) {
    throw std::invalid_argument("SigmaDeltaAdc: current outside [0, full scale]");
  }
  // Map [0, FS] onto the stable modulator range [-0.9, 0.9].
  const double x = -0.9 + 1.8 * current / spec_.full_scale_current;
  const double est = convert_normalized(x);
  const double frac = std::clamp((est + 0.9) / 1.8, 0.0, 1.0);
  return static_cast<std::uint32_t>(std::lround(frac * spec_.max_code()));
}

double SigmaDeltaAdc::current_from_code(std::uint32_t code) const {
  const double frac =
      static_cast<double>(std::min<int>(static_cast<int>(code), spec_.max_code())) /
      spec_.max_code();
  return frac * spec_.full_scale_current;
}

}  // namespace ironic::bio
