// The complete electronic interface of Fig. 3: bandgap references +
// potentiostat/readout + sigma-delta ADC, with the power bookkeeping the
// power-management module sizes itself against.
#pragma once

#include <cstdint>

#include "src/bio/adc.hpp"
#include "src/bio/cell.hpp"
#include "src/bio/potentiostat.hpp"
#include "src/pm/load.hpp"

namespace ironic::bio {

struct MeasurementResult {
  double cell_current = 0.0;        // IWE [A]
  double readout_voltage = 0.0;     // potentiostat output [V]
  std::uint32_t adc_code = 0;       // 14-bit conversion
  double estimated_current = 0.0;   // current reconstructed from the code [A]
  double estimated_concentration = 0.0;  // [mol/m^3] == mM
};

struct InterfaceSpec {
  PotentiostatSpec potentiostat;
  AdcSpec adc;
  // Supply currents (paper Sec. II-B): 45 uA front end, 240 uA ADC+bandgap.
  double frontend_current = 45e-6;
  double adc_current = 240e-6;
  double supply_voltage = 1.8;
  double temperature = 310.15;  // body temperature [K]
};

class ElectronicInterface {
 public:
  ElectronicInterface(ElectrochemicalCell cell, InterfaceSpec spec = {},
                      std::uint64_t noise_seed = 1);

  const ElectrochemicalCell& cell() const { return cell_; }
  const InterfaceSpec& spec() const { return spec_; }

  // Full measurement chain at a metabolite concentration [mM].
  MeasurementResult measure(double concentration);

  // Supply current in a sensor mode: the front end idles in low power,
  // the ADC only burns during measurements (high power).
  double supply_current(pm::SensorMode mode) const;
  // The bias actually applied across the cell by the two bandgaps.
  double applied_bias() const;

 private:
  ElectrochemicalCell cell_;
  InterfaceSpec spec_;
  PotentiostatModel potentiostat_;
  SigmaDeltaAdc adc_;
};

}  // namespace ironic::bio
