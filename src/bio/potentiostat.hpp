// Potentiostat and current readout (paper Sec. II-B, Fig. 3).
//
// OP1 drives the counter electrode so the reference electrode sits at
// the 550 mV bandgap potential; OP2 plus the MP0/MP2 pair holds the
// working electrode at 1.2 V and mirrors the cell current into the
// readout resistor. Provided here as
//   - PotentiostatModel: behavioural transfer (current -> readout volts)
//     with mirror gain error and opamp offsets, and
//   - build_potentiostat_circuit: a transistor-level macro with a
//     Randles-equivalent cell, used by the integration tests.
#pragma once

#include <string>

#include "src/bio/cell.hpp"
#include "src/spice/circuit.hpp"

namespace ironic::bio {

struct PotentiostatSpec {
  double v_we = 1.2;           // working-electrode bias [V]
  double v_re = 0.55;          // reference-electrode bias [V]
  double readout_resistance = 300e3;  // converts the mirrored current [Ohm]
  double mirror_ratio = 1.0;   // current mirror copy gain
  double mirror_mismatch = 0.0;  // relative gain error
  double input_offset = 0.0;   // OP1/OP2 offset [V]
  double supply_current = 45e-6;  // paper: 45 uA at 1.8 V

  double oxidation_bias() const { return v_we - v_re; }
};

class PotentiostatModel {
 public:
  explicit PotentiostatModel(PotentiostatSpec spec = {});
  const PotentiostatSpec& spec() const { return spec_; }

  // Readout voltage for a given working-electrode current.
  double readout_voltage(double i_we) const;
  // Inverse transfer: estimated current from a readout voltage.
  double current_from_readout(double v) const;
  // Measure a cell at a concentration: applies the bias check and the
  // mirror/readout chain.
  double measure(const ElectrochemicalCell& cell, double concentration) const;

 private:
  PotentiostatSpec spec_;
};

struct PotentiostatHandles {
  spice::NodeId ce;
  spice::NodeId re;
  spice::NodeId we;
  spice::NodeId readout;  // Vout of Fig. 3
  std::string readout_name;
};

// Transistor-level macro: OP1/OP2, the MP0..MP3-style mirror (folded to
// one copy branch), a Randles cell, and a concentration-programmed
// faradaic current source.
PotentiostatHandles build_potentiostat_circuit(spice::Circuit& circuit,
                                               const std::string& prefix,
                                               const ElectrochemicalCell& cell,
                                               double concentration,
                                               const PotentiostatSpec& spec = {});

}  // namespace ironic::bio
