// Three-electrode electrochemical cell (paper Sec. II, Fig. 2/4).
//
// The faradaic current of an enzyme-functionalized working electrode
// follows Michaelis–Menten kinetics in the metabolite concentration:
//   j(C) = j_max * C / (Km + C)       [A/m^2]
// The two enzymes of Fig. 4 (commercial cLODx and wild-type wtLODx on
// MWCNT screen-printed electrodes) are captured as parameter sets fitted
// to the published calibration curves; MWCNT functionalization enters as
// a multiplicative sensitivity gain.
#pragma once

#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace ironic::bio {

struct EnzymeParams {
  std::string name;
  double j_max = 0.0;      // saturation current density [A/m^2] at t_ref
  double km = 1.0;         // Michaelis constant [mol/m^3] (== mM)
  double mwcnt_gain = 1.0; // sensitivity multiplier from MWCNT coating
  // Enzyme-kinetics temperature dependence: activity scales by
  // q10^((T - t_ref)/10 K). Subcutaneous implants sit at ~37 C, bench
  // calibration often at room temperature — this is the correction.
  double q10 = 2.0;
  double t_ref = 310.15;   // [K]
};

// Fitted to Fig. 4 (delta-current density in uA/cm^2 vs log10[mM]).
EnzymeParams clodx_params();   // commercial lactate oxidase
EnzymeParams wtlodx_params();  // wild-type lactate oxidase
// Same enzymes without the MWCNT enhancement (ablation of refs [20,21]).
EnzymeParams clodx_bare_params();
// Glucose oxidase for the glycemia application the paper's intro leads
// with (GlucoMen-class subcutaneous monitoring, ref [1]).
EnzymeParams gox_params();

struct ElectrodeGeometry {
  // Screen-printed working electrodes are ~0.25 cm^2; with the Fig. 4
  // current densities that puts IWE in the uA range the 4 uA-full-scale
  // ADC was designed for.
  double area = 2.5e-5;  // [m^2]
};

// Randles-type small-signal elements, for the circuit-level cell model.
// Rct is the *small-signal* slope of the faradaic branch around the
// operating point — the DC faradaic current itself is injected by a
// separate source in the circuit macro, so Rct is kept large enough not
// to double-count the bias current.
struct RandlesParams {
  double solution_resistance = 500.0;    // Rs, CE..RE path [Ohm]
  double charge_transfer_resistance = 10e6;  // Rct at the WE interface [Ohm]
  double double_layer_capacitance = 100e-9;  // Cdl at the WE [F]
};

class ElectrochemicalCell {
 public:
  ElectrochemicalCell(EnzymeParams enzyme, ElectrodeGeometry geometry = {},
                      RandlesParams randles = {});

  const EnzymeParams& enzyme() const { return enzyme_; }
  const ElectrodeGeometry& geometry() const { return geometry_; }
  const RandlesParams& randles() const { return randles_; }

  // Faradaic current density at concentration C [mol/m^3] -> [A/m^2],
  // at the enzyme's reference temperature. Requires the cell to be
  // biased at/above the oxidation potential.
  double current_density(double concentration) const;
  // Same, at junction temperature T [K] (Q10 kinetics scaling).
  double current_density(double concentration, double temperature) const;
  // Total working-electrode current [A] at the given concentration.
  double current(double concentration) const;
  double current(double concentration, double temperature) const;
  // Delta current density in the paper's units [uA/cm^2].
  double delta_current_density_ua_cm2(double concentration) const;
  // Inverse of current(): concentration [mol/m^3] for a measured current.
  double concentration_from_current(double i_we) const;

  // Whether an applied WE-RE bias runs the oxidation (>= ~0.55 V for
  // lactate/glucose with these electrodes; the paper applies 0.65 V).
  static bool bias_sufficient(double v_we_re) { return v_we_re >= 0.55; }

 private:
  EnzymeParams enzyme_;
  ElectrodeGeometry geometry_;
  RandlesParams randles_;
};

// Chronoamperometry: after the oxidation potential steps on, the
// faradaic current decays from a diffusion-limited transient onto the
// steady state (Cottrell behaviour):
//   i(t) = i_ss * (1 + sqrt(t_d / t)),
// with t_d the electrode's diffusion time constant. Sampling too early
// after power-up over-reads — the timing constraint the power-management
// module's charge-up imposes on the measurement schedule.
struct ChronoamperometryParams {
  double diffusion_time = 0.5;  // t_d [s] for the SPE geometry
};

// Current at time t after the bias steps on (t > 0). [A]
double chronoamperometric_current(const ElectrochemicalCell& cell,
                                  double concentration, double t,
                                  ChronoamperometryParams params = {});

// Earliest sampling time with the transient over-read below `tolerance`
// (relative): sqrt(t_d/t) <= tol  =>  t >= t_d / tol^2. [s]
double settling_time_for_tolerance(double tolerance,
                                   ChronoamperometryParams params = {});

// One (log10-concentration, delta-current) calibration point.
struct CalibrationPoint {
  double log10_mM = 0.0;
  double delta_current_ua_cm2 = 0.0;
};

// Sweep the cell over [c_min, c_max] mM with `n` log-spaced points —
// regenerates a Fig. 4 curve.
std::vector<CalibrationPoint> calibration_curve(const ElectrochemicalCell& cell,
                                                double c_min_mM, double c_max_mM,
                                                int n);

}  // namespace ironic::bio
