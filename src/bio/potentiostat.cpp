#include "src/bio/potentiostat.hpp"

#include <stdexcept>

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::bio {

PotentiostatModel::PotentiostatModel(PotentiostatSpec spec) : spec_(spec) {
  if (spec_.readout_resistance <= 0.0 || spec_.mirror_ratio <= 0.0) {
    throw std::invalid_argument("PotentiostatModel: invalid spec");
  }
}

double PotentiostatModel::readout_voltage(double i_we) const {
  if (i_we < 0.0) throw std::invalid_argument("readout_voltage: current must be >= 0");
  const double gain = spec_.mirror_ratio * (1.0 + spec_.mirror_mismatch);
  return i_we * gain * spec_.readout_resistance;
}

double PotentiostatModel::current_from_readout(double v) const {
  const double gain = spec_.mirror_ratio * (1.0 + spec_.mirror_mismatch);
  return v / (gain * spec_.readout_resistance);
}

double PotentiostatModel::measure(const ElectrochemicalCell& cell,
                                  double concentration) const {
  const double bias = spec_.oxidation_bias() + spec_.input_offset;
  if (!ElectrochemicalCell::bias_sufficient(bias)) {
    return 0.0;  // reaction does not run below the oxidation potential
  }
  return readout_voltage(cell.current(concentration));
}

PotentiostatHandles build_potentiostat_circuit(spice::Circuit& circuit,
                                               const std::string& prefix,
                                               const ElectrochemicalCell& cell,
                                               double concentration,
                                               const PotentiostatSpec& spec) {
  using namespace spice;
  PotentiostatHandles h;
  h.ce = circuit.node(prefix + ".ce");
  h.re = circuit.node(prefix + ".re");
  h.we = circuit.node(prefix + ".we");
  h.readout = circuit.node(prefix + ".vout");
  h.readout_name = prefix + ".vout";
  const NodeId vdd = circuit.node(prefix + ".vdd");
  const NodeId vre_ref = circuit.node(prefix + ".vre_ref");
  const NodeId vwe_ref = circuit.node(prefix + ".vwe_ref");
  const NodeId gate = circuit.node(prefix + ".mirror_gate");

  circuit.add<VoltageSource>(prefix + ".Vdd", vdd, kGround, Waveform::dc(1.8));
  circuit.add<VoltageSource>(prefix + ".Vreref", vre_ref, kGround,
                             Waveform::dc(spec.v_re));
  circuit.add<VoltageSource>(prefix + ".Vweref", vwe_ref, kGround,
                             Waveform::dc(spec.v_we));

  // OP1: regulates the reference electrode to 550 mV by driving CE.
  // Both amplifiers get an explicit dominant pole (R into a grounded
  // capacitor): the real parts have one, and the transient engine needs
  // it to settle these stiff loops the way the silicon does at start-up.
  OpAmpParams op1;
  op1.gain = 100.0;  // loop-stability: keeps the OP1 crossover below the CE pole
  op1.v_out_min = 0.0;
  op1.v_out_max = 1.8;
  op1.input_offset = spec.input_offset;
  const NodeId ce_raw = circuit.node(prefix + ".ce_raw");
  circuit.add<OpAmp>(prefix + ".OP1", ce_raw, vre_ref, h.re, op1);
  circuit.add<Resistor>(prefix + ".Rop1", ce_raw, h.ce, 2e3);
  // Capacitor initial conditions put the start-up at the nominal
  // operating point; without them the 1 uF double layer makes settling a
  // multi-ms affair (physically true, pointlessly slow to simulate).
  circuit.add<Capacitor>(prefix + ".Cop1", h.ce, kGround, 1e-9, spec.v_re);

  // Randles cell: Rs from CE to RE, then Rct || Cdl from RE to WE, plus
  // the concentration-programmed faradaic current drawn from WE into CE.
  const auto& rp = cell.randles();
  circuit.add<Resistor>(prefix + ".Rs", h.ce, h.re, rp.solution_resistance);
  circuit.add<Resistor>(prefix + ".Rct", h.re, h.we, rp.charge_transfer_resistance);
  circuit.add<Capacitor>(prefix + ".Cdl", h.re, h.we, rp.double_layer_capacitance,
                         spec.v_re - spec.v_we);
  const double i_far = cell.current(concentration);
  circuit.add<CurrentSource>(prefix + ".Ifar", h.we, h.ce, Waveform::dc(i_far));

  // OP2 + MP0: hold WE at 1.2 V; MP0 sources the cell current from vdd,
  // and MP2 (gate-shared) mirrors it into the readout resistor.
  OpAmpParams op2 = op1;
  op2.gain = 30.0;  // WE loop: dominant pole at the WE node, gate pole parasitic
  op2.input_offset = 0.0;
  const NodeId gate_raw = circuit.node(prefix + ".gate_raw");
  circuit.add<OpAmp>(prefix + ".OP2", gate_raw, h.we, vwe_ref, op2);
  circuit.add<Resistor>(prefix + ".Rop2", gate_raw, gate, 10e3);
  circuit.add<Capacitor>(prefix + ".Cop2", gate, kGround, 3e-12, 1.2);
  // Node capacitances of the electrode and readout nets.
  circuit.add<Capacitor>(prefix + ".Cwe", h.we, kGround, 100e-12, spec.v_we);
  circuit.add<Capacitor>(prefix + ".Cro", h.readout, kGround, 100e-12);
  MosParams mp;
  mp.type = MosType::kPmos;
  mp.kp = 70e-6;
  mp.w = 2.0 * mp.l;  // small mirror: healthy overdrive at uA currents
  mp.bulk_diodes = false;
  circuit.add<Mosfet>(prefix + ".MP0", h.we, gate, vdd, vdd, mp);
  MosParams mp2 = mp;
  mp2.w = mp.w * spec.mirror_ratio * (1.0 + spec.mirror_mismatch);
  circuit.add<Mosfet>(prefix + ".MP2", h.readout, gate, vdd, vdd, mp2);
  circuit.add<Resistor>(prefix + ".Rread", h.readout, kGround,
                        spec.readout_resistance);
  return h;
}

}  // namespace ironic::bio
