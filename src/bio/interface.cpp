#include "src/bio/interface.hpp"

#include <algorithm>

#include "src/pm/bandgap.hpp"

namespace ironic::bio {

ElectronicInterface::ElectronicInterface(ElectrochemicalCell cell, InterfaceSpec spec,
                                         std::uint64_t noise_seed)
    : cell_(std::move(cell)),
      spec_(spec),
      potentiostat_(spec.potentiostat),
      adc_(spec.adc, noise_seed) {}

double ElectronicInterface::applied_bias() const {
  return pm::cell_bias_voltage(spec_.temperature, spec_.supply_voltage);
}

MeasurementResult ElectronicInterface::measure(double concentration) {
  MeasurementResult out;
  if (!ElectrochemicalCell::bias_sufficient(applied_bias())) {
    return out;  // references collapsed (e.g. under-volted supply)
  }
  out.cell_current = cell_.current(concentration);
  out.readout_voltage = potentiostat_.readout_voltage(out.cell_current);
  const double current_seen = potentiostat_.current_from_readout(out.readout_voltage);
  const double clamped =
      std::clamp(current_seen, 0.0, adc_.spec().full_scale_current);
  out.adc_code = adc_.convert_current(clamped);
  out.estimated_current = adc_.current_from_code(out.adc_code);
  out.estimated_concentration = cell_.concentration_from_current(
      std::min(out.estimated_current, cell_.current(1e9) * 0.999));
  return out;
}

double ElectronicInterface::supply_current(pm::SensorMode mode) const {
  switch (mode) {
    case pm::SensorMode::kSleep:
      return 2e-6;
    case pm::SensorMode::kLowPower:
      return spec_.frontend_current;
    case pm::SensorMode::kHighPower:
      return spec_.frontend_current + spec_.adc_current;
  }
  return 0.0;
}

}  // namespace ironic::bio
