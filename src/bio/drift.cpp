#include "src/bio/drift.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::bio {

DriftParams bare_electrode_drift() {
  DriftParams p;
  p.sensitivity_tau_days = 3.0;  // unprotected enzyme decays fast
  p.sensitivity_floor = 0.1;
  p.baseline_drift_per_day = 6e-4;
  return p;
}

DriftModel::DriftModel(DriftParams params) : params_(params) {
  if (params_.sensitivity_tau_days <= 0.0 || params_.sensitivity_floor < 0.0 ||
      params_.sensitivity_floor > 1.0) {
    throw std::invalid_argument("DriftModel: invalid parameters");
  }
}

double DriftModel::sensitivity_gain(double days) const {
  if (days < 0.0) throw std::invalid_argument("DriftModel: days must be >= 0");
  return params_.sensitivity_floor +
         (1.0 - params_.sensitivity_floor) *
             std::exp(-days / params_.sensitivity_tau_days);
}

double DriftModel::baseline_density(double days) const {
  if (days < 0.0) throw std::invalid_argument("DriftModel: days must be >= 0");
  return params_.baseline_drift_per_day * days;
}

double DriftModel::aged_current_density(const ElectrochemicalCell& cell,
                                        double concentration, double days) const {
  return sensitivity_gain(days) * cell.current_density(concentration) +
         baseline_density(days);
}

TwoPointCalibration::TwoPointCalibration(const ElectrochemicalCell& cell,
                                         const DriftModel& drift, double days,
                                         double c_low, double c_high) {
  if (c_high <= c_low || c_low < 0.0) {
    throw std::invalid_argument("TwoPointCalibration: need 0 <= c_low < c_high");
  }
  // Measure the aged sensor at the two reference points.
  const double j_low = drift.aged_current_density(cell, c_low, days);
  const double j_high = drift.aged_current_density(cell, c_high, days);
  // The pristine transfer at the same points.
  const double j0_low = cell.current_density(c_low);
  const double j0_high = cell.current_density(c_high);
  gain_ = (j_high - j_low) / (j0_high - j0_low);
  baseline_ = j_low - gain_ * j0_low;
}

double TwoPointCalibration::concentration_from_density(const ElectrochemicalCell& cell,
                                                       double j_measured) const {
  if (gain_ <= 0.0) throw std::logic_error("TwoPointCalibration: non-physical gain");
  // Undo the drift, then invert Michaelis–Menten through the cell model.
  const double j_pristine = (j_measured - baseline_) / gain_;
  const double i_equiv = j_pristine * cell.geometry().area;
  return cell.concentration_from_current(std::max(i_equiv, 0.0));
}

}  // namespace ironic::bio
