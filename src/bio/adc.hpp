// Second-order sigma-delta ADC (paper Sec. II-B): digitizes the readout
// of the working-electrode current — 4 uA full scale, 250 pA resolution,
// hence 14 bits; implemented as a bit-true behavioural model: a 2nd-order
// single-bit modulator followed by a sinc^3 (CIC) decimator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"

namespace ironic::bio {

// Single-bit, second-order CIFB modulator. Inputs are normalized to
// [-1, 1]; the usable (stable) range is about +/-0.9.
class SigmaDeltaModulator {
 public:
  SigmaDeltaModulator() = default;
  // One modulator clock: returns the quantizer decision (+1/-1).
  int step(double x);
  void reset();
  // State bound used by the stability test.
  double integrator_magnitude() const;

 private:
  double s1_ = 0.0;
  double s2_ = 0.0;
  int y_ = 1;
};

// sinc^3 CIC decimator with decimation ratio R: three integrators at the
// modulator rate, three combs at the output rate; DC gain R^3 (removed).
class Sinc3Decimator {
 public:
  explicit Sinc3Decimator(int decimation_ratio);
  // Push one modulator sample (+1/-1 or any double); returns true when a
  // decimated output is ready via `output()`.
  bool push(double sample);
  double output() const { return output_; }
  int ratio() const { return ratio_; }
  void reset();

 private:
  int ratio_;
  int phase_ = 0;
  double i1_ = 0.0, i2_ = 0.0, i3_ = 0.0;
  double c1_ = 0.0, c2_ = 0.0, c3_ = 0.0;
  double output_ = 0.0;
  bool primed_ = false;
  int outputs_seen_ = 0;
};

struct AdcSpec {
  int bits = 14;
  double full_scale_current = 4e-6;  // [A]
  int oversampling_ratio = 256;
  int settle_outputs = 4;   // decimator outputs discarded per conversion
  int average_outputs = 4;  // outputs averaged per conversion
  double input_noise_rms = 0.0;  // input-referred noise, normalized units

  double lsb_current() const {
    return full_scale_current / static_cast<double>((1 << bits) - 1);
  }
  int max_code() const { return (1 << bits) - 1; }
};

class SigmaDeltaAdc {
 public:
  explicit SigmaDeltaAdc(AdcSpec spec = {}, std::uint64_t noise_seed = 1);
  const AdcSpec& spec() const { return spec_; }

  // Convert a normalized input in [-0.9, 0.9] to an estimate in the same
  // units (runs the modulator + decimator for one conversion).
  double convert_normalized(double x);
  // Convert a current in [0, full_scale] to the output code [0, 2^14-1].
  std::uint32_t convert_current(double current);
  // Current corresponding to a code (the ADC transfer inverse).
  double current_from_code(std::uint32_t code) const;

 private:
  AdcSpec spec_;
  SigmaDeltaModulator modulator_;
  Sinc3Decimator decimator_;
  util::Rng noise_;
};

}  // namespace ironic::bio
