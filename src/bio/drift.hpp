// Sensor stability over implant lifetime (paper Sec. II-A: "A main issue
// of metabolite biosensors is the lack of stability").
//
// Enzyme electrodes lose activity over days (enzyme denaturation,
// membrane fouling) and their baseline shifts. DriftModel applies both
// effects to a cell; TwoPointCalibration is the standard field fix — the
// paper's MWCNT immobilization slows the decay, which the parameters
// expose.
#pragma once

#include "src/bio/cell.hpp"

namespace ironic::bio {

struct DriftParams {
  // Exponential sensitivity decay: gain(t) = end + (1-end) exp(-t/tau).
  double sensitivity_tau_days = 12.0;   // MWCNT-stabilized electrode
  double sensitivity_floor = 0.35;      // long-term residual activity
  // Baseline (zero-analyte) current creep [A/m^2 per day].
  double baseline_drift_per_day = 2e-4;
};

// Faster decay without the nanotube immobilization (refs [20, 21]).
DriftParams bare_electrode_drift();

class DriftModel {
 public:
  explicit DriftModel(DriftParams params = {});
  const DriftParams& params() const { return params_; }

  // Multiplicative sensitivity remaining after `days` implanted.
  double sensitivity_gain(double days) const;
  // Additive baseline current density after `days` [A/m^2].
  double baseline_density(double days) const;
  // The current density an aged sensor actually reports.
  double aged_current_density(const ElectrochemicalCell& cell, double concentration,
                              double days) const;

 private:
  DriftParams params_;
};

// Two-point recalibration: measure the aged sensor at two known
// concentrations, recover effective gain and baseline, then invert
// subsequent readings back to concentration.
class TwoPointCalibration {
 public:
  // Calibrate against the aged sensor at `days`, using reference
  // solutions c_low and c_high [mM].
  TwoPointCalibration(const ElectrochemicalCell& cell, const DriftModel& drift,
                      double days, double c_low, double c_high);

  double gain() const { return gain_; }
  double baseline() const { return baseline_; }

  // Concentration estimate from an aged current-density reading.
  double concentration_from_density(const ElectrochemicalCell& cell,
                                    double j_measured) const;

 private:
  double gain_ = 1.0;
  double baseline_ = 0.0;
};

}  // namespace ironic::bio
