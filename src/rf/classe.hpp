// Class-E power amplifier: the transmitter of the IronIC patch (paper
// Sec. III-A, Fig. 6) driving the inductive link at 5 MHz with a 50 %
// duty square gate drive.
//
// Design equations follow the idealized Sokal/Raab analysis: with the
// shunt and series capacitors tuned, the switch voltage returns to zero
// with zero slope exactly at turn-on (zero-voltage switching), giving a
// theoretical efficiency of 100 %.
#pragma once

#include <string>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/trace.hpp"

namespace ironic::rf {

struct ClassESpec {
  double supply_voltage = 3.7;   // patch battery rail [V]
  double frequency = 5e6;        // switching frequency [Hz]
  double load_resistance = 5.0;  // effective load seen by the PA [Ohm]
  double loaded_q = 7.0;         // series-tank loaded quality factor
};

struct ClassEDesign {
  ClassESpec spec;
  double output_power = 0.0;     // idealized Pout [W]
  double shunt_capacitance = 0.0;   // C across the switch (paper's C4) [F]
  double series_capacitance = 0.0;  // series tank C (paper's C3) [F]
  double series_inductance = 0.0;   // series tank L [H]
  double choke_inductance = 0.0;    // RF choke from the supply [H]
  double peak_switch_voltage = 0.0; // ~3.56 Vdd stress on the switch [V]
};

// Idealized Sokal design for the given spec.
ClassEDesign design_class_e(const ClassESpec& spec);

// Load resistance that produces `target_power` from `supply_voltage`.
double class_e_load_for_power(double target_power, double supply_voltage);

// Handles to the devices instantiated by build_class_e.
struct ClassEInstance {
  spice::NodeId drain;           // switch/shunt-cap node
  spice::NodeId output;          // node feeding the load (after the tank)
  spice::VoltageSource* supply = nullptr;
  spice::SmoothSwitch* power_switch = nullptr;
  spice::Inductor* choke = nullptr;
};

// Build the PA into `circuit` with device names prefixed by `prefix`.
// The gate is driven by `gate_drive` (e.g. a 50 % square clock; for ASK
// downlink the comms module supplies an amplitude-keyed supply rail
// instead). The caller attaches the load (resistor or link primary)
// between the returned `output` node and ground.
ClassEInstance build_class_e(spice::Circuit& circuit, const std::string& prefix,
                             const ClassEDesign& design, spice::Waveform gate_drive);

// Zero-voltage-switching quality metric: mean |v(drain)| at the switch
// turn-on instants over the analyzed window, normalized by the supply
// voltage. ~0 for a tuned amplifier; grows as C3/C4 detune.
double zvs_error(const spice::TransientResult& result, const std::string& drain_node,
                 double frequency, double first_turn_on, double t_start, double t_stop,
                 double supply_voltage);

}  // namespace ironic::rf
