// Purely capacitive L-match (the paper's CA / CB, Sec. IV-C, Fig. 7)
// between the receiving inductor and the rectifier input.
//
// The rectifier is nonlinear; the paper extracts an *average* input
// impedance (~150 Ohm) from transient simulation and sizes CA/CB against
// it. `design_capacitive_match` implements the same procedure: series CA
// resonates the coil, shunt CB transforms the rectifier resistance down
// to the load the link wants to see.
#pragma once

#include <complex>

namespace ironic::rf {

struct CapacitiveMatch {
  double series_c = 0.0;  // CA [F]
  double shunt_c = 0.0;   // CB [F]
  double q = 0.0;         // transformation Q
};

// Design CA/CB so that, at `frequency`, a source with series inductance
// `coil_inductance` driving [CA series -> (CB || r_load)] sees a purely
// resistive `r_target` (r_target < r_load required).
CapacitiveMatch design_capacitive_match(double coil_inductance, double r_load,
                                        double r_target, double frequency);

// Input impedance of the matched network (coil reactance + CA + CB||R)
// at `frequency` — used by tests to verify the design closes.
std::complex<double> matched_input_impedance(const CapacitiveMatch& match,
                                             double coil_inductance, double r_load,
                                             double frequency);

}  // namespace ironic::rf
