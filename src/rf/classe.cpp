#include "src/rf/classe.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::rf {

using constants::kPi;
using constants::kTwoPi;

ClassEDesign design_class_e(const ClassESpec& spec) {
  if (spec.supply_voltage <= 0.0 || spec.frequency <= 0.0 ||
      spec.load_resistance <= 0.0) {
    throw std::invalid_argument("design_class_e: spec values must be > 0");
  }
  if (spec.loaded_q <= 1.8) {
    throw std::invalid_argument("design_class_e: loaded Q must exceed ~1.8");
  }
  const double omega = kTwoPi * spec.frequency;
  const double r = spec.load_resistance;

  ClassEDesign d;
  d.spec = spec;
  // Idealized 50 %-duty class-E relations (Sokal, QEX 2001; Raab 1977).
  d.output_power = spec.supply_voltage * spec.supply_voltage / r * 2.0 /
                   (1.0 + kPi * kPi / 4.0);
  d.shunt_capacitance = 1.0 / (5.447 * omega * r);
  d.series_inductance = spec.loaded_q * r / omega;
  d.series_capacitance = d.shunt_capacitance * (5.447 / spec.loaded_q) *
                         (1.0 + 1.153 / (spec.loaded_q - 1.153));
  d.choke_inductance = 30.0 * r / omega;
  d.peak_switch_voltage = 3.562 * spec.supply_voltage;
  return d;
}

double class_e_load_for_power(double target_power, double supply_voltage) {
  if (target_power <= 0.0 || supply_voltage <= 0.0) {
    throw std::invalid_argument("class_e_load_for_power: arguments must be > 0");
  }
  return supply_voltage * supply_voltage * 2.0 / ((1.0 + kPi * kPi / 4.0) * target_power);
}

ClassEInstance build_class_e(spice::Circuit& circuit, const std::string& prefix,
                             const ClassEDesign& design, spice::Waveform gate_drive) {
  using namespace spice;
  ClassEInstance inst;
  const NodeId vdd = circuit.node(prefix + ".vdd");
  const NodeId drain = circuit.node(prefix + ".drain");
  const NodeId tank = circuit.node(prefix + ".tank");
  const NodeId out = circuit.node(prefix + ".out");
  const NodeId gate = circuit.node(prefix + ".gate");
  inst.drain = drain;
  inst.output = out;

  inst.supply = &circuit.add<VoltageSource>(prefix + ".Vdd", vdd, kGround,
                                            Waveform::dc(design.spec.supply_voltage));
  circuit.add<VoltageSource>(prefix + ".Vgate", gate, kGround, std::move(gate_drive));
  inst.choke = &circuit.add<Inductor>(prefix + ".Lchoke", vdd, drain,
                                      design.choke_inductance, 0.05);

  SwitchParams sw;
  sw.r_on = 0.2;    // on-resistance of the patch power FET (M2 in Fig. 6)
  sw.r_off = 1e6;
  sw.v_on = 1.2;
  sw.v_off = 0.6;
  inst.power_switch =
      &circuit.add<SmoothSwitch>(prefix + ".M", drain, kGround, gate, kGround, sw);

  circuit.add<Capacitor>(prefix + ".Cshunt", drain, kGround, design.shunt_capacitance);
  circuit.add<Inductor>(prefix + ".Ltank", drain, tank, design.series_inductance, 0.05);
  circuit.add<Capacitor>(prefix + ".Cseries", tank, out, design.series_capacitance);
  return inst;
}

double zvs_error(const spice::TransientResult& result, const std::string& drain_node,
                 double frequency, double first_turn_on, double t_start, double t_stop,
                 double supply_voltage) {
  if (t_stop <= t_start) throw std::invalid_argument("zvs_error: bad window");
  const double period = 1.0 / frequency;
  const std::string sig = "v(" + drain_node + ")";
  double sum = 0.0;
  int count = 0;
  // Sample the drain a hair before each turn-on edge: a tuned class-E
  // brings the voltage to ~0 exactly there.
  for (double t = first_turn_on; t <= t_stop; t += period) {
    if (t < t_start) continue;
    sum += std::abs(result.value_at(sig, t - period * 1e-3));
    ++count;
  }
  if (count == 0) throw std::invalid_argument("zvs_error: no turn-on edges in window");
  return sum / count / supply_voltage;
}

}  // namespace ironic::rf
