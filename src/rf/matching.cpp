#include "src/rf/matching.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::rf {

using constants::kTwoPi;

CapacitiveMatch design_capacitive_match(double coil_inductance, double r_load,
                                        double r_target, double frequency) {
  if (coil_inductance <= 0.0 || r_load <= 0.0 || r_target <= 0.0 || frequency <= 0.0) {
    throw std::invalid_argument("design_capacitive_match: arguments must be > 0");
  }
  if (r_target >= r_load) {
    throw std::invalid_argument(
        "design_capacitive_match: can only transform down (r_target < r_load)");
  }
  const double omega = kTwoPi * frequency;

  // Shunt section: Re{ R || 1/(jwCB) } = r_target fixes q = w CB R.
  const double q = std::sqrt(r_load / r_target - 1.0);
  const double cb = q / (omega * r_load);
  // The parallel section contributes X_par = -q r_target; the series
  // capacitor absorbs the remaining coil reactance.
  const double x_series_needed = omega * coil_inductance - q * r_target;
  if (x_series_needed <= 0.0) {
    throw std::invalid_argument(
        "design_capacitive_match: coil reactance too small for this transformation");
  }
  CapacitiveMatch match;
  match.series_c = 1.0 / (omega * x_series_needed);
  match.shunt_c = cb;
  match.q = q;
  return match;
}

std::complex<double> matched_input_impedance(const CapacitiveMatch& match,
                                             double coil_inductance, double r_load,
                                             double frequency) {
  const double omega = kTwoPi * frequency;
  const std::complex<double> jw(0.0, omega);
  const std::complex<double> z_coil = jw * coil_inductance;
  const std::complex<double> z_ca = 1.0 / (jw * match.series_c);
  const std::complex<double> y_par = 1.0 / std::complex<double>(r_load, 0.0) +
                                     jw * match.shunt_c;
  return z_coil + z_ca + 1.0 / y_par;
}

}  // namespace ironic::rf
