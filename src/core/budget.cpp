#include "src/core/budget.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::core {

PowerBudget analyze_power_budget(const magnetics::InductiveLink& link,
                                 double drive_amplitude, const pm::LdoSpec& ldo,
                                 const pm::SensorLoadSpec& load,
                                 double rectifier_efficiency) {
  if (rectifier_efficiency <= 0.0 || rectifier_efficiency > 1.0) {
    throw std::invalid_argument("analyze_power_budget: bad rectifier efficiency");
  }
  PowerBudget b;
  b.drive_amplitude = drive_amplitude;
  b.rectifier_efficiency = rectifier_efficiency;
  const auto analysis = link.analyze(drive_amplitude, link.optimal_load_resistance());
  b.received_power = analysis.power_delivered;
  b.dc_power = b.received_power * rectifier_efficiency;

  const pm::LdoModel ldo_model{ldo};
  const double i_low = pm::mode_current(load, pm::SensorMode::kLowPower);
  const double i_high = pm::mode_current(load, pm::SensorMode::kHighPower);
  b.rail_power_low = load.supply_voltage * i_low;
  b.rail_power_high = load.supply_voltage * i_high;
  // The LDO input runs at its minimum regulation voltage in the worst case.
  const double vin = ldo.min_input_voltage();
  b.input_power_low = vin * ldo_model.input_current(i_low);
  b.input_power_high = vin * ldo_model.input_current(i_high);
  b.margin_low = b.dc_power - b.input_power_low;
  b.margin_high = b.dc_power - b.input_power_high;
  b.sustains_low = b.margin_low > 0.0;
  b.sustains_high = b.margin_high > 0.0;
  return b;
}

double drive_for_high_power_mode(const magnetics::InductiveLink& link,
                                 const pm::LdoSpec& ldo,
                                 const pm::SensorLoadSpec& load,
                                 double rectifier_efficiency) {
  const pm::LdoModel ldo_model{ldo};
  const double i_high = pm::mode_current(load, pm::SensorMode::kHighPower);
  const double needed_dc = ldo.min_input_voltage() * ldo_model.input_current(i_high);
  const double needed_rf = needed_dc / rectifier_efficiency;
  return link.drive_for_power(needed_rf, link.optimal_load_resistance());
}

}  // namespace ironic::core
