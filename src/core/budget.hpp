// Implant power-budget analysis: does the link deliver enough for the
// sensor in each operating mode, with the rectifier and LDO in between?
#pragma once

#include "src/magnetics/link.hpp"
#include "src/pm/load.hpp"
#include "src/pm/regulator.hpp"

namespace ironic::core {

struct PowerBudget {
  double drive_amplitude = 0.0;   // primary drive [V]
  double received_power = 0.0;    // at the matched load [W]
  double rectifier_efficiency = 0.55;  // half-wave + clamp losses
  double dc_power = 0.0;          // after rectification [W]
  double rail_power_low = 0.0;    // sensor demand, low-power mode [W]
  double rail_power_high = 0.0;   // sensor demand, measurement mode [W]
  double input_power_low = 0.0;   // demand seen at the LDO input [W]
  double input_power_high = 0.0;
  double margin_low = 0.0;        // dc_power - input_power_low [W]
  double margin_high = 0.0;
  bool sustains_low = false;
  bool sustains_high = false;
};

// Analyze the budget for a link at a given drive into its optimal load.
PowerBudget analyze_power_budget(const magnetics::InductiveLink& link,
                                 double drive_amplitude, const pm::LdoSpec& ldo,
                                 const pm::SensorLoadSpec& load,
                                 double rectifier_efficiency = 0.55);

// Drive amplitude needed so the budget sustains the high-power mode.
double drive_for_high_power_mode(const magnetics::InductiveLink& link,
                                 const pm::LdoSpec& ldo,
                                 const pm::SensorLoadSpec& load,
                                 double rectifier_efficiency = 0.55);

}  // namespace ironic::core
