#include "src/core/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/rf/classe.hpp"
#include "src/rf/matching.hpp"
#include "src/util/constants.hpp"

namespace ironic::core {

using namespace spice;

namespace {

// Largest rectifier-side target resistance the purely capacitive L-match
// can reach with the given coil reactance (smaller root of
// rt^2 - r_load rt + (wL)^2 = 0).
double match_target_limit(double coil_inductance, double r_load, double frequency) {
  const double wl = constants::kTwoPi * frequency * coil_inductance;
  const double disc = r_load * r_load - 4.0 * wl * wl;
  if (disc <= 0.0) return r_load / 2.0;
  return (r_load - std::sqrt(disc)) / 2.0;
}

Waveform envelope_waveform(const util::PiecewiseLinear& env) {
  std::vector<double> xs(env.xs().begin(), env.xs().end());
  std::vector<double> ys(env.ys().begin(), env.ys().end());
  return Waveform::pwl(std::move(xs), std::move(ys));
}

}  // namespace

EndToEndSim::EndToEndSim(EndToEndConfig config) : config_(std::move(config)) {
  if (config_.t_stop <= 0.0 || config_.dt_max <= 0.0) {
    throw std::invalid_argument("EndToEndSim: invalid timing");
  }
  if (config_.downlink_start + static_cast<double>(config_.downlink_bits.size()) *
          config_.ask.bit_period() > config_.uplink_start) {
    throw std::invalid_argument("EndToEndSim: downlink burst overlaps uplink");
  }
}

Fig11Result EndToEndSim::run() {
  obs::Span run_span("EndToEndSim::run", "core");
  run_span.arg("tx_mode",
               config_.tx_mode == TxMode::kThevenin ? "thevenin" : "class-e");
  obs::Span build_span("EndToEndSim::build_circuit", "core");
  Circuit ckt;
  const NodeId vi = ckt.node("vi");

  // --- downlink stimulus ----------------------------------------------------
  comms::AskSpec ask = config_.ask;
  ask.carrier_frequency = config_.carrier_frequency;

  std::string tx_current_signal;  // signal carrying the LSK signature
  bool lsk_invert = false;

  if (config_.tx_mode == TxMode::kThevenin) {
    ask.amplitude_high = config_.source_amplitude;
    const auto env = comms::ask_envelope(config_.downlink_bits, ask,
                                         config_.downlink_start, config_.t_stop);
    const NodeId src = ckt.node("src");
    ckt.add<VoltageSource>(
        "Vs", src, kGround,
        Waveform::modulated_sine(config_.carrier_frequency, env));
    ckt.add<Resistor>("Rs", src, vi, config_.source_resistance);
    tx_current_signal = "i(Vs)";
    // A shorted input draws *more* current from a Thevenin source.
    lsk_invert = true;
  } else {
    // Class-E transmitter: the ASK keys the PA supply rail (the paper's
    // R7/R8 modulator scales the rail the same way).
    rf::ClassESpec pa_spec;
    pa_spec.frequency = config_.carrier_frequency;
    pa_spec.supply_voltage = config_.pa_supply_voltage;
    pa_spec.load_resistance = config_.pa_load_resistance;
    const auto design = rf::design_class_e(pa_spec);

    ask.amplitude_high = pa_spec.supply_voltage;
    const auto env = comms::ask_envelope(config_.downlink_bits, ask,
                                         config_.downlink_start, config_.t_stop);
    auto inst = rf::build_class_e(
        ckt, "pa", design,
        square_clock(0.0, 1.8, config_.carrier_frequency, 0.0, 2e-9));
    inst.supply->set_waveform(envelope_waveform(env));

    // Primary: series-tune the patch coil at the carrier.
    magnetics::InductiveLink link{config_.link};
    const NodeId p1 = ckt.node("coil_p");
    ckt.add<Capacitor>("Ctx", inst.output, p1, link.tx_tuning_capacitance());
    const NodeId s1 = ckt.node("coil_s");
    link.add_to_circuit(ckt, "LINK", p1, kGround, s1, kGround);

    // Secondary: purely capacitive CA/CB match into the rectifier.
    const double l2 = link.rx_coil().inductance();
    const double r_rect = 300.0;  // extracted average input resistance
    const double rt_limit = match_target_limit(l2, r_rect, config_.carrier_frequency);
    const double r_target = std::min(link.optimal_load_resistance(), 0.8 * rt_limit);
    const auto match = rf::design_capacitive_match(l2, r_rect, r_target,
                                                   config_.carrier_frequency);
    ckt.add<Capacitor>("CA", s1, vi, match.series_c);
    ckt.add<Capacitor>("CB", vi, kGround, match.shunt_c);

    tx_current_signal = "i(pa.Vdd)";
    // In this operating regime the shorted secondary reflects *more*
    // load onto the PA (the matched target resistance is comparable to
    // the coil ESR), so a '0' raises the supply current. The patch
    // firmware calibrates the comparator polarity the same way.
    lsk_invert = true;
  }

  // --- implant power management ----------------------------------------------
  comms::LskSpec lsk = config_.lsk;
  const auto vup = comms::lsk_gate_waveform(config_.uplink_bits, lsk,
                                            config_.uplink_start);
  const auto vm2 = comms::lsk_m2_gate_waveform(config_.uplink_bits, lsk,
                                               config_.uplink_start);
  const auto rect = pm::build_rectifier(ckt, "rect", vi, vup, vm2, config_.rectifier);
  pm::build_sensor_load(ckt, "sensor", rect.output, config_.load, config_.load_mode);

  pm::DemodulatorOptions dm = config_.demodulator;
  dm.clock_frequency = ask.bit_rate;
  // phi2 (discharge) spans the first half of each bit cell — where the
  // envelope edge lands — and phi1 samples the settled second half.
  dm.clock_delay = config_.downlink_start - 0.5 * ask.bit_period();
  const auto demod = pm::build_demodulator(ckt, "dm", vi, dm);

  build_span.end();

  // --- simulate ---------------------------------------------------------------
  TransientOptions opts;
  opts.t_stop = config_.t_stop;
  opts.dt_max = config_.dt_max;
  opts.record_every = config_.record_every;
  opts.record_signals = {"v(vi)", "v(rect.vo)", "v(" + demod.output_name + ")",
                         "v(" + demod.sample_name + ")", tx_current_signal};
  if (config_.tx_mode == TxMode::kClassE) {
    opts.record_signals.push_back("v(pa.vdd)");
    opts.record_signals.push_back("v(pa.drain)");
  }
  TransientStats sim_stats;
  Fig11Result result{run_transient(ckt, opts, &sim_stats), 0.0, false, {}, false,
                     {}, false, 0.0, false, 0.0};

  // --- Fig. 11 checks -----------------------------------------------------------
  obs::Span post_span("EndToEndSim::postprocess", "core");
  result.charged =
      result.trace.first_crossing("v(rect.vo)", 2.75, 0.0, /*rising=*/true,
                                  result.t_charge);

  result.decoded_downlink = [&] {
    const auto bits = pm::decode_demodulator_output(
        result.trace, demod, config_.downlink_start, config_.downlink_bits.size());
    return comms::Bits(bits.begin(), bits.end());
  }();
  result.downlink_ok = result.decoded_downlink == config_.downlink_bits;

  if (!config_.uplink_bits.empty()) {
    const auto& t = result.trace.time();
    const auto i_tx = result.trace.signal(tx_current_signal);
    std::vector<double> mag(i_tx.size());
    for (std::size_t k = 0; k < i_tx.size(); ++k) mag[k] = std::abs(i_tx[k]);
    result.detected_uplink = comms::detect_lsk(t, mag, lsk, config_.uplink_start,
                                               config_.uplink_bits.size(), lsk_invert);
    result.uplink_ok = result.detected_uplink == config_.uplink_bits;
  } else {
    result.uplink_ok = true;
  }

  // The Fig. 11 invariant covers the fully charged plateau and both
  // communication bursts; a slower-than-nominal charge (e.g. a high-Co
  // Monte-Carlo draw) is judged from the burst window, not mid-charge.
  const double settle =
      std::min(result.charged ? result.t_charge : config_.downlink_start,
               config_.downlink_start);
  result.vo_min_after_charge =
      result.trace.min_between("v(rect.vo)", settle, config_.t_stop);
  const pm::LdoModel ldo{config_.ldo};
  result.regulator_never_starved =
      result.vo_min_after_charge >= ldo.spec().min_input_voltage();
  result.worst_case_rail = ldo.output_voltage(
      result.vo_min_after_charge, pm::mode_current(config_.load, config_.load_mode));
  post_span.end();

  if constexpr (obs::kEnabled) {
    auto& r = obs::MetricsRegistry::instance();
    r.counter("core.fig11.runs").add();
    if (!result.downlink_ok || !result.uplink_ok) r.counter("core.fig11.comm_failures").add();
    r.gauge("core.fig11.t_charge_us").set(result.charged ? result.t_charge * 1e6 : -1.0);
    r.gauge("core.fig11.vo_min_after_charge").set(result.vo_min_after_charge);
    r.gauge("core.fig11.worst_case_rail").set(result.worst_case_rail);
    r.gauge("core.fig11.sim_steps_per_sec")
        .set(sim_stats.wall_seconds > 0.0
                 ? static_cast<double>(sim_stats.accepted_steps) / sim_stats.wall_seconds
                 : 0.0);

    // The paper's Fig. 11 phases on the simulation timeline: charge-up,
    // then the ASK downlink and LSK uplink bursts.
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      const double charge_end =
          result.charged ? result.t_charge : config_.downlink_start;
      recorder.sim_span("charge-up", "fig11", 0.0, charge_end,
                        {{"target", "2.75 V"},
                         {"charged", result.charged ? "true" : "false"}});
      const double dl_end =
          config_.downlink_start +
          static_cast<double>(config_.downlink_bits.size()) * ask.bit_period();
      recorder.sim_span("ask-downlink-burst", "fig11", config_.downlink_start, dl_end,
                        {{"bits", comms::bits_to_string(config_.downlink_bits)},
                         {"ok", result.downlink_ok ? "true" : "false"}});
      if (!config_.uplink_bits.empty()) {
        const double ul_end =
            config_.uplink_start +
            static_cast<double>(config_.uplink_bits.size()) * lsk.bit_period();
        recorder.sim_span("lsk-uplink-burst", "fig11", config_.uplink_start, ul_end,
                          {{"bits", comms::bits_to_string(config_.uplink_bits)},
                           {"ok", result.uplink_ok ? "true" : "false"}});
      }
    }
  }
  return result;
}

Fig11Result run_fig11_scenario() { return EndToEndSim{}.run(); }

EndToEndConfig class_e_demo_config() {
  EndToEndConfig cfg;
  cfg.tx_mode = TxMode::kClassE;
  cfg.link.distance = 10e-3;  // the paper's Sec. IV measurement distance
  cfg.pa_supply_voltage = 0.35;
  cfg.pa_load_resistance = 6.0;
  cfg.ask.bit_rate = 25e3;
  cfg.ask.modulation_depth = 0.55;
  cfg.ask.edge_time = 2e-6;
  cfg.lsk.bit_rate = 16.7e3;
  cfg.demodulator.threshold = 2.95;
  cfg.t_stop = 1000e-6;
  cfg.downlink_start = 450e-6;
  cfg.downlink_bits = comms::bits_from_string("10110");
  cfg.uplink_start = 700e-6;
  cfg.uplink_bits = comms::bits_from_string("0101");
  return cfg;
}

}  // namespace ironic::core
