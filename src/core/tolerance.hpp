// Component-tolerance Monte Carlo of the Fig. 11 scenario: does the
// power-management module still charge, communicate, and hold the
// 2.1 V regulation floor when Co, the drive level, the demodulator
// threshold, and the diode process spread across their tolerance bands?
// The paper's silicon would face exactly these spreads; this is the
// robustness analysis its "future works ... characterization by means of
// measurements" points toward.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/system.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/util/rng.hpp"

namespace ironic::core {

struct ToleranceSpec {
  int runs = 20;
  std::uint64_t seed = 0xF16A11;
  // 1-sigma relative spreads.
  double storage_cap_tol = 0.10;     // +/-10 % Co (typical MLCC)
  double drive_tol = 0.05;           // link/placement variation
  double threshold_tol = 0.04;       // comparator reference spread
  double diode_is_tol = 0.30;        // process spread (log-normal-ish)
};

struct ToleranceRun {
  bool charged = false;
  bool downlink_ok = false;
  bool uplink_ok = false;
  bool regulation_ok = false;
  double vo_min = 0.0;
  double t_charge = 0.0;
};

struct ToleranceResult {
  int runs = 0;
  int pass_charged = 0;
  int pass_downlink = 0;
  int pass_uplink = 0;
  int pass_regulation = 0;
  int pass_all = 0;
  double vo_min_worst = 1e9;
  std::vector<ToleranceRun> details;

  double yield() const {
    return runs == 0 ? 0.0 : static_cast<double>(pass_all) / runs;
  }
};

// A shortened Fig. 11 scenario (6 downlink bits, 4 uplink bits, 450 us)
// so a 20-run Monte Carlo stays interactive.
EndToEndConfig shortened_fig11_config();

// Run the Monte Carlo serially. Deterministic for a given spec/seed:
// draw k perturbs from RNG stream k of the seed's family, so the result
// is bit-identical to the parallel overload below.
ToleranceResult run_tolerance_analysis(const ToleranceSpec& spec,
                                       const EndToEndConfig& base =
                                           shortened_fig11_config());

// Fan the draws out over `pool`. Bit-identical to the serial overload
// for any pool size and any scheduling.
ToleranceResult run_tolerance_analysis(const ToleranceSpec& spec,
                                       const EndToEndConfig& base,
                                       exec::ThreadPool& pool);

// One Monte-Carlo draw (run k of the analysis uses RNG stream k of the
// spec's seed family). Exposed so sweep tooling can fan draws out itself;
// pure function of (spec, base, rng state), safe from any worker thread.
ToleranceRun evaluate_tolerance_draw(const ToleranceSpec& spec,
                                     const EndToEndConfig& base, util::Rng& rng);

}  // namespace ironic::core
