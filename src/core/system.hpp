// End-to-end system simulation: the paper's Fig. 11 experiment.
//
// Sec. IV-C of the paper evaluates the power-management module by
// driving it with a source standing in for the measured link (power
// levels taken from the physical patch at 10 mm), then checking that
//   1. Co charges to 2.75 V (at t = 270 us in the paper),
//   2. an 18-bit downlink burst at 100 kbps starting at 300 us is
//      recovered at Vdem on every clock,
//   3. an uplink burst at 520 us keys the input via M1/M2, and
//   4. Vo never falls below 2.1 V after charge-up, so the 300 mV-dropout
//      LDO can hold the sensor's 1.8 V rail.
// EndToEndSim reproduces exactly that methodology; the class-E + link
// co-simulation lives in `TxMode::kClassE` as an extension.
#pragma once

#include <optional>
#include <string>

#include "src/comms/ask.hpp"
#include "src/comms/bitstream.hpp"
#include "src/comms/lsk.hpp"
#include "src/magnetics/link.hpp"
#include "src/pm/demodulator.hpp"
#include "src/pm/load.hpp"
#include "src/pm/rectifier.hpp"
#include "src/pm/regulator.hpp"
#include "src/spice/engine.hpp"

namespace ironic::core {

enum class TxMode {
  kThevenin,  // amplitude-keyed source + source resistance (paper's method)
  kClassE,    // full class-E PA + inductive link co-simulation
};

struct EndToEndConfig {
  // Defaults are calibrated so the Thevenin scenario lands on the
  // paper's Fig. 11 numbers: Co crosses 2.75 V near 270 us and Vo stays
  // above 2.1 V through both bursts.
  EndToEndConfig() {
    rectifier.storage_capacitance = 330e-9;
    demodulator.threshold = 2.9;
  }

  TxMode tx_mode = TxMode::kThevenin;
  double carrier_frequency = 5e6;

  // Thevenin stand-in for the measured link (paper values at 10 mm).
  double source_amplitude = 5.2;    // carrier amplitude during a '1' [V]
  double source_resistance = 150.0; // matched source [Ohm]

  // Class-E mode: geometry of the real link and the PA rail (the ASK
  // modulator keys this rail; lower it to transmit less power).
  magnetics::LinkConfig link;
  double pa_supply_voltage = 2.4;
  double pa_load_resistance = 5.0;

  comms::AskSpec ask;   // downlink (100 kbps)
  comms::LskSpec lsk;   // uplink (66.6 kbps)
  pm::RectifierOptions rectifier;
  pm::DemodulatorOptions demodulator;
  pm::LdoSpec ldo;
  pm::SensorLoadSpec load;
  pm::SensorMode load_mode = pm::SensorMode::kLowPower;

  comms::Bits downlink_bits =
      comms::bits_from_string("110100101101011001");  // 18 bits, as in Fig. 11
  double downlink_start = 300e-6;
  comms::Bits uplink_bits = comms::bits_from_string("10110010");
  double uplink_start = 520e-6;

  double t_stop = 700e-6;
  double dt_max = 5e-9;
  int record_every = 4;
};

struct Fig11Result {
  spice::TransientResult trace;
  // Charge-up: first time Vo crosses 2.75 V (NaN if never).
  double t_charge = 0.0;
  bool charged = false;
  // Downlink recovery at Vdem.
  comms::Bits decoded_downlink;
  bool downlink_ok = false;
  // Uplink detection on the transmit-side current.
  comms::Bits detected_uplink;
  bool uplink_ok = false;
  // The Fig. 11 invariant: min Vo after charge-up.
  double vo_min_after_charge = 0.0;
  bool regulator_never_starved = false;  // vo_min >= ldo.min_input_voltage()
  // Derived: sensor rail from the behavioural LDO at the worst Vo.
  double worst_case_rail = 0.0;
};

class EndToEndSim {
 public:
  explicit EndToEndSim(EndToEndConfig config = {});
  const EndToEndConfig& config() const { return config_; }

  // Build and run the full transient, then post-process the Fig. 11
  // checks. Deterministic.
  Fig11Result run();

 private:
  EndToEndConfig config_;
};

// Convenience: the scenario exactly as the paper frames it.
Fig11Result run_fig11_scenario();

// Calibrated configuration for the full class-E + link co-simulation
// (the extension beyond the paper's source-driven methodology). The
// synthesized coils have a higher unloaded Q than the paper's lossy
// flexible-PCB spirals, so the envelope settles more slowly and the
// downlink runs at 25 kbps in this mode.
EndToEndConfig class_e_demo_config();

}  // namespace ironic::core
