#include "src/core/tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace ironic::core {

EndToEndConfig shortened_fig11_config() {
  EndToEndConfig cfg;
  cfg.t_stop = 450e-6;
  cfg.downlink_start = 300e-6;
  cfg.downlink_bits = comms::bits_from_string("101100");
  cfg.uplink_start = 380e-6;
  cfg.uplink_bits = comms::bits_from_string("0110");
  return cfg;
}

ToleranceRun evaluate_tolerance_draw(const ToleranceSpec& spec,
                                     const EndToEndConfig& base,
                                     util::Rng& rng) {
  const auto perturb = [&](double nominal, double tol) {
    // Log-normal spread (clamped at +/-3 sigma): multiplicative, always
    // positive, and equivalent to a relative gaussian for small tol.
    const double draw = std::clamp(rng.normal(0.0, tol), -3.0 * tol, 3.0 * tol);
    return nominal * std::exp(draw);
  };

  EndToEndConfig cfg = base;
  cfg.rectifier.storage_capacitance =
      perturb(base.rectifier.storage_capacitance, spec.storage_cap_tol);
  cfg.source_amplitude = perturb(base.source_amplitude, spec.drive_tol);
  cfg.demodulator.threshold =
      perturb(base.demodulator.threshold, spec.threshold_tol);
  cfg.rectifier.diode_is = perturb(base.rectifier.diode_is, spec.diode_is_tol);

  const auto result = EndToEndSim{cfg}.run();
  ToleranceRun run;
  run.charged = result.charged;
  run.downlink_ok = result.downlink_ok;
  run.uplink_ok = result.uplink_ok;
  run.regulation_ok = result.regulator_never_starved;
  run.vo_min = result.vo_min_after_charge;
  run.t_charge = result.t_charge;
  return run;
}

namespace {

// Fold per-run outcomes (already in run order) into the aggregate.
ToleranceResult aggregate_tolerance_runs(std::vector<ToleranceRun> details) {
  ToleranceResult out;
  out.runs = static_cast<int>(details.size());
  for (const auto& run : details) {
    out.pass_charged += run.charged;
    out.pass_downlink += run.downlink_ok;
    out.pass_uplink += run.uplink_ok;
    out.pass_regulation += run.regulation_ok;
    out.pass_all += (run.charged && run.downlink_ok && run.uplink_ok &&
                     run.regulation_ok);
    out.vo_min_worst = std::min(out.vo_min_worst, run.vo_min);
  }
  out.details = std::move(details);
  return out;
}

}  // namespace

ToleranceResult run_tolerance_analysis(const ToleranceSpec& spec,
                                       const EndToEndConfig& base) {
  if (spec.runs < 1) throw std::invalid_argument("run_tolerance_analysis: runs >= 1");
  const std::size_t runs = static_cast<std::size_t>(spec.runs);
  auto streams = util::Rng(spec.seed).split(runs);
  std::vector<ToleranceRun> details(runs);
  for (std::size_t k = 0; k < runs; ++k) {
    details[k] = evaluate_tolerance_draw(spec, base, streams[k]);
  }
  return aggregate_tolerance_runs(std::move(details));
}

ToleranceResult run_tolerance_analysis(const ToleranceSpec& spec,
                                       const EndToEndConfig& base,
                                       exec::ThreadPool& pool) {
  if (spec.runs < 1) throw std::invalid_argument("run_tolerance_analysis: runs >= 1");
  const std::size_t runs = static_cast<std::size_t>(spec.runs);
  auto streams = util::Rng(spec.seed).split(runs);
  std::vector<ToleranceRun> details(runs);
  exec::parallel_for(pool, 0, runs,
                     [&](std::size_t k) {
                       details[k] = evaluate_tolerance_draw(spec, base, streams[k]);
                     },
                     exec::ParallelForOptions{/*grain=*/1, {}});
  return aggregate_tolerance_runs(std::move(details));
}

}  // namespace ironic::core
