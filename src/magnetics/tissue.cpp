#include "src/magnetics/tissue.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::magnetics {

using constants::kMu0;
using constants::kTwoPi;

double tissue_skin_depth(const TissueProperties& props, double frequency) {
  if (frequency <= 0.0) throw std::invalid_argument("tissue_skin_depth: f must be > 0");
  const double omega = kTwoPi * frequency;
  return std::sqrt(2.0 / (omega * kMu0 * props.conductivity));
}

TissueSlab::TissueSlab(TissueProperties props, double thickness)
    : props_(props), thickness_(thickness) {
  if (thickness_ < 0.0) throw std::invalid_argument("TissueSlab: thickness must be >= 0");
}

double TissueSlab::field_attenuation(double frequency) const {
  const double delta = tissue_skin_depth(props_, frequency);
  return std::exp(-thickness_ / delta);
}

double TissueSlab::power_attenuation(double frequency) const {
  const double f = field_attenuation(frequency);
  return f * f;
}

double TissueSlab::reflected_resistance(double frequency, double coil_radius) const {
  // Quasi-static estimate: the coil's dipole field induces eddy currents
  // in a conductive half-space; the equivalent series resistance scales
  // as sigma * omega^2 * mu0^2 * r^3 (dimensional analysis of the induced
  // EMF loop), truncated by the finite slab thickness.
  const double omega = kTwoPi * frequency;
  const double half_space =
      props_.conductivity * omega * omega * kMu0 * kMu0 * std::pow(coil_radius, 3) / 32.0;
  const double delta = tissue_skin_depth(props_, frequency);
  const double fill = 1.0 - std::exp(-thickness_ / delta);
  return half_space * fill;
}

TissueProperties sirloin_properties() {
  // Lean bovine muscle at ~5 MHz (Gabriel dispersion data, rounded).
  return TissueProperties{0.59, 250.0};
}

}  // namespace ironic::magnetics
