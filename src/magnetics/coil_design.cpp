#include "src/magnetics/coil_design.hpp"

#include <algorithm>
#include <stdexcept>

namespace ironic::magnetics {

std::vector<CoilCandidate> enumerate_coil_designs(
    const CoilSpec& base, const CoilDesignGoal& goal,
    const std::vector<int>& layer_options, const std::vector<int>& turn_options,
    const std::vector<double>& trace_width_options) {
  if (layer_options.empty() || turn_options.empty() || trace_width_options.empty()) {
    throw std::invalid_argument("enumerate_coil_designs: empty option lists");
  }
  std::vector<CoilCandidate> out;
  for (int layers : layer_options) {
    for (int turns : turn_options) {
      for (double width : trace_width_options) {
        CoilSpec spec = base;
        spec.layers = layers;
        spec.turns_per_layer = turns;
        spec.trace_width = width;
        spec.turn_spacing = width;  // keep pitch proportional to the trace
        CoilCandidate candidate;
        candidate.spec = spec;
        try {
          const Coil coil{spec};
          candidate.inductance = coil.inductance();
          candidate.q = coil.quality_factor(goal.frequency);
          candidate.srf = coil.self_resonance_frequency();
        } catch (const std::invalid_argument&) {
          continue;  // does not fit the outline
        }
        const double lo = goal.target_inductance * (1.0 - goal.tolerance);
        const double hi = goal.target_inductance * (1.0 + goal.tolerance);
        candidate.meets_target = candidate.inductance >= lo &&
                                 candidate.inductance <= hi &&
                                 candidate.srf >= goal.min_srf_ratio * goal.frequency;
        out.push_back(candidate);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CoilCandidate& a, const CoilCandidate& b) { return a.q > b.q; });
  return out;
}

CoilCandidate design_coil(const CoilSpec& base, const CoilDesignGoal& goal,
                          const std::vector<int>& layer_options,
                          const std::vector<int>& turn_options,
                          const std::vector<double>& trace_width_options) {
  const auto candidates = enumerate_coil_designs(base, goal, layer_options,
                                                 turn_options, trace_width_options);
  for (const auto& candidate : candidates) {
    if (candidate.meets_target) return candidate;  // highest-Q qualifier
  }
  throw std::runtime_error("design_coil: no candidate meets the target band");
}

}  // namespace ironic::magnetics
