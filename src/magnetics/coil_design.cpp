#include "src/magnetics/coil_design.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace ironic::magnetics {

namespace {

// Evaluate one (layers, turns, width) grid cell; nullopt when the
// geometry does not fit the outline. Pure — callable from any worker.
std::optional<CoilCandidate> evaluate_candidate(const CoilSpec& base,
                                                const CoilDesignGoal& goal,
                                                int layers, int turns,
                                                double width) {
  CoilSpec spec = base;
  spec.layers = layers;
  spec.turns_per_layer = turns;
  spec.trace_width = width;
  spec.turn_spacing = width;  // keep pitch proportional to the trace
  CoilCandidate candidate;
  candidate.spec = spec;
  try {
    const Coil coil{spec};
    candidate.inductance = coil.inductance();
    candidate.q = coil.quality_factor(goal.frequency);
    candidate.srf = coil.self_resonance_frequency();
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // does not fit the outline
  }
  const double lo = goal.target_inductance * (1.0 - goal.tolerance);
  const double hi = goal.target_inductance * (1.0 + goal.tolerance);
  candidate.meets_target = candidate.inductance >= lo &&
                           candidate.inductance <= hi &&
                           candidate.srf >= goal.min_srf_ratio * goal.frequency;
  return candidate;
}

}  // namespace

std::vector<CoilCandidate> enumerate_coil_designs(
    const CoilSpec& base, const CoilDesignGoal& goal,
    const std::vector<int>& layer_options, const std::vector<int>& turn_options,
    const std::vector<double>& trace_width_options, exec::ThreadPool* pool) {
  if (layer_options.empty() || turn_options.empty() || trace_width_options.empty()) {
    throw std::invalid_argument("enumerate_coil_designs: empty option lists");
  }
  // Grid-order slots: cell (l, t, w) lands at a fixed index whether it is
  // evaluated serially or by a stolen task, so the pre-sort order — and
  // therefore the sorted result, ties included — never depends on
  // scheduling.
  const std::size_t n_turns = turn_options.size();
  const std::size_t n_widths = trace_width_options.size();
  const std::size_t n = layer_options.size() * n_turns * n_widths;
  std::vector<std::optional<CoilCandidate>> slots(n);

  const auto eval_cell = [&](std::size_t i) {
    const std::size_t w = i % n_widths;
    const std::size_t t = (i / n_widths) % n_turns;
    const std::size_t l = i / (n_widths * n_turns);
    slots[i] = evaluate_candidate(base, goal, layer_options[l], turn_options[t],
                                  trace_width_options[w]);
  };

  if (pool != nullptr) {
    exec::parallel_for(*pool, 0, n, eval_cell);
  } else {
    for (std::size_t i = 0; i < n; ++i) eval_cell(i);
  }

  std::vector<CoilCandidate> out;
  out.reserve(n);
  for (auto& slot : slots) {
    if (slot) out.push_back(std::move(*slot));
  }
  std::sort(out.begin(), out.end(),
            [](const CoilCandidate& a, const CoilCandidate& b) { return a.q > b.q; });
  return out;
}

CoilCandidate design_coil(const CoilSpec& base, const CoilDesignGoal& goal,
                          const std::vector<int>& layer_options,
                          const std::vector<int>& turn_options,
                          const std::vector<double>& trace_width_options,
                          exec::ThreadPool* pool) {
  const auto candidates = enumerate_coil_designs(base, goal, layer_options,
                                                 turn_options, trace_width_options,
                                                 pool);
  for (const auto& candidate : candidates) {
    if (candidate.meets_target) return candidate;  // highest-Q qualifier
  }
  throw std::runtime_error("design_coil: no candidate meets the target band");
}

}  // namespace ironic::magnetics
