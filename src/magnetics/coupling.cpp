#include "src/magnetics/coupling.hpp"

#include <cmath>
#include <stdexcept>

#include "src/magnetics/elliptic.hpp"
#include "src/util/constants.hpp"

namespace ironic::magnetics {

using constants::kMu0;
using constants::kTwoPi;

double mutual_coaxial_filaments(double a, double b, double d) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("mutual_coaxial_filaments: radii must be > 0");
  }
  const double denom = (a + b) * (a + b) + d * d;
  const double kappa = std::sqrt(4.0 * a * b / denom);
  if (kappa >= 1.0) {
    throw std::invalid_argument("mutual_coaxial_filaments: degenerate geometry");
  }
  const double kk = elliptic_k(kappa);
  const double ee = elliptic_e(kappa);
  return kMu0 * std::sqrt(a * b) *
         ((2.0 / kappa - kappa) * kk - (2.0 / kappa) * ee);
}

double mutual_filaments(double a, double b, double d, double rho,
                        int quadrature_points) {
  if (std::abs(rho) < 1e-12) return mutual_coaxial_filaments(a, b, d);
  if (quadrature_points < 8) {
    throw std::invalid_argument("mutual_filaments: too few quadrature points");
  }
  // Neumann formula over the two loop angles; both integrands are
  // periodic, so the trapezoid rule converges spectrally.
  const int n = quadrature_points;
  const double h = kTwoPi / n;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = i * h;
    const double x1 = a * std::cos(t);
    const double y1 = a * std::sin(t);
    for (int j = 0; j < n; ++j) {
      const double s = j * h;
      const double x2 = rho + b * std::cos(s);
      const double y2 = b * std::sin(s);
      const double dx = x2 - x1;
      const double dy = y2 - y1;
      const double r = std::sqrt(dx * dx + dy * dy + d * d);
      sum += std::cos(t - s) / r;
    }
  }
  return kMu0 / (4.0 * constants::kPi) * a * b * sum * h * h;
}

double mutual_inductance(const Coil& tx, const Coil& rx, double distance,
                         double lateral_offset) {
  if (distance <= 0.0) {
    throw std::invalid_argument("mutual_inductance: distance must be > 0");
  }
  double total = 0.0;
  for (const auto& f1 : tx.filaments()) {
    for (const auto& f2 : rx.filaments()) {
      const double d = distance + f1.z + f2.z;
      // Coaxial path is exact and fast; the offset path integrates Neumann.
      total += std::abs(lateral_offset) < 1e-12
                   ? mutual_coaxial_filaments(f1.radius, f2.radius, d)
                   : mutual_filaments(f1.radius, f2.radius, d, lateral_offset, 64);
    }
  }
  return total;
}

double coupling_coefficient(const Coil& tx, const Coil& rx, double distance,
                            double lateral_offset) {
  const double m = mutual_inductance(tx, rx, distance, lateral_offset);
  return m / std::sqrt(tx.inductance() * rx.inductance());
}

}  // namespace ironic::magnetics
