#include "src/magnetics/optimize.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::magnetics {

FrequencyChoice optimal_carrier_frequency(const LinkConfig& config, double f_min,
                                          double f_max, int points,
                                          double srf_fraction) {
  if (f_min <= 0.0 || f_max <= f_min || points < 2 || srf_fraction <= 0.0) {
    throw std::invalid_argument("optimal_carrier_frequency: bad arguments");
  }
  FrequencyChoice best;
  const double log_min = std::log10(f_min);
  const double log_max = std::log10(f_max);
  for (int i = 0; i < points; ++i) {
    const double f = std::pow(10.0, log_min + (log_max - log_min) * i / (points - 1));
    LinkConfig cfg = config;
    cfg.frequency = f;
    if (cfg.tissue.has_value()) {
      // Rebuild the slab so its loss is evaluated at this frequency.
      cfg.tissue = TissueSlab(cfg.tissue->properties(), cfg.tissue->thickness());
    }
    InductiveLink link{cfg};
    const double srf =
        std::min(link.tx_coil().self_resonance_frequency(),
                 link.rx_coil().self_resonance_frequency());
    if (f > srf_fraction * srf) continue;  // too close to self-resonance
    const auto analysis = link.analyze(1.0, link.optimal_load_resistance());
    if (analysis.efficiency > best.efficiency) {
      best.frequency = f;
      best.efficiency = analysis.efficiency;
      best.srf_margin = srf / f;
    }
  }
  if (best.frequency == 0.0) {
    throw std::runtime_error(
        "optimal_carrier_frequency: no feasible frequency in the band");
  }
  return best;
}

}  // namespace ironic::magnetics
