// The inductive power/data link of the paper: patch coil -> (tissue) ->
// implant coil, with series-series resonant tuning at the 5 MHz carrier.
//
// Provides phasor (steady-state) analysis for the power sweeps and a
// netlist exporter for the transistor-level transient simulations.
#pragma once

#include <complex>
#include <optional>
#include <string>

#include "src/magnetics/coil.hpp"
#include "src/magnetics/tissue.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/devices_passive.hpp"

namespace ironic::magnetics {

struct LinkConfig {
  CoilSpec tx = patch_coil_spec();
  CoilSpec rx = implant_coil_spec();
  double distance = 6e-3;          // face-to-face coil separation [m]
  double lateral_offset = 0.0;     // misalignment [m]
  double frequency = 5e6;          // carrier [Hz]
  std::optional<TissueSlab> tissue;  // nullopt = air
};

// Steady-state operating point of the tuned link.
struct LinkAnalysis {
  double coupling = 0.0;            // k
  double mutual = 0.0;              // M [H]
  std::complex<double> i_primary;   // primary current phasor [A]
  std::complex<double> i_secondary; // secondary current phasor [A]
  double power_in = 0.0;            // average power drawn from the source [W]
  double power_delivered = 0.0;     // average power into the load [W]
  double efficiency = 0.0;          // delivered / in
};

class InductiveLink {
 public:
  explicit InductiveLink(LinkConfig config);

  const LinkConfig& config() const { return config_; }
  const Coil& tx_coil() const { return tx_; }
  const Coil& rx_coil() const { return rx_; }

  double coupling() const { return coupling_; }
  double mutual() const { return mutual_; }
  // Series resonance capacitors that tune each winding to the carrier.
  double tx_tuning_capacitance() const;
  double rx_tuning_capacitance() const;

  // Phasor analysis of the series-series tuned link driven by a sine of
  // the given amplitude into the given load resistance.
  LinkAnalysis analyze(double drive_amplitude, double load_resistance) const;

  // Load resistance maximizing link efficiency (classic k-Q expression).
  double optimal_load_resistance() const;

  // Drive amplitude needed to deliver `target_power` into `load` [V].
  double drive_for_power(double target_power, double load_resistance) const;

  // Reconfigure the geometry (retunes k and M).
  void set_distance(double distance);
  void set_lateral_offset(double offset);
  void set_tissue(std::optional<TissueSlab> tissue);

  // Instantiate the link as coupled inductors (with ESR) between the
  // given node pairs of a transient netlist. Returns the device.
  spice::CoupledInductors& add_to_circuit(spice::Circuit& circuit,
                                          const std::string& name,
                                          spice::NodeId tx_a, spice::NodeId tx_b,
                                          spice::NodeId rx_a, spice::NodeId rx_b) const;

 private:
  void recompute();

  LinkConfig config_;
  Coil tx_;
  Coil rx_;
  double coupling_ = 0.0;
  double mutual_ = 0.0;
};

}  // namespace ironic::magnetics
