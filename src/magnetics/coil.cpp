#include "src/magnetics/coil.hpp"

#include <cmath>
#include <stdexcept>

#include "src/magnetics/coupling.hpp"
#include "src/util/constants.hpp"

namespace ironic::magnetics {

using constants::kEps0;
using constants::kMu0;
using constants::kPi;
using constants::kTwoPi;

Coil::Coil(CoilSpec spec) : spec_(spec) {
  if (spec_.turns_per_layer < 1 || spec_.layers < 1) {
    throw std::invalid_argument("Coil: need at least one turn and one layer");
  }
  if (spec_.trace_width <= 0.0 || spec_.trace_thickness <= 0.0) {
    throw std::invalid_argument("Coil: trace dimensions must be > 0");
  }
  equivalent_radius_ = std::sqrt(spec_.outer_width * spec_.outer_height / kPi);

  // Build the filament list: turns shrink inward per layer; layers stack
  // along z starting at the coil face.
  const double pitch = spec_.trace_width + spec_.turn_spacing;
  for (int layer = 0; layer < spec_.layers; ++layer) {
    const double z = layer * spec_.layer_pitch;
    for (int turn = 0; turn < spec_.turns_per_layer; ++turn) {
      const double radius =
          equivalent_radius_ - spec_.trace_width / 2.0 - turn * pitch;
      if (radius <= spec_.trace_width) {
        throw std::invalid_argument("Coil: turns do not fit inside the outline");
      }
      filaments_.push_back({radius, z});
    }
  }

  // Self-inductance: Greenhouse decomposition. Loop self term uses the
  // geometric-mean-distance wire radius for a rectangular cross-section.
  const double gmd_radius = 0.2235 * (spec_.trace_width + spec_.trace_thickness);
  double total = 0.0;
  for (std::size_t i = 0; i < filaments_.size(); ++i) {
    const double r = filaments_[i].radius;
    total += kMu0 * r * (std::log(8.0 * r / gmd_radius) - 1.75);
    for (std::size_t j = i + 1; j < filaments_.size(); ++j) {
      const double dz = std::abs(filaments_[i].z - filaments_[j].z);
      total += 2.0 * mutual_coaxial_filaments(filaments_[i].radius,
                                              filaments_[j].radius, dz);
    }
  }
  inductance_ = total;

  for (const auto& f : filaments_) wire_length_ += kTwoPi * f.radius;
  dc_resistance_ =
      spec_.resistivity * wire_length_ / (spec_.trace_width * spec_.trace_thickness);

  // Parasitic capacitance: overlapping-plate estimate between adjacent
  // layers (in series through the stack); adjacent-turn fringing for a
  // single-layer coil.
  const double overlap_area = spec_.turns_per_layer *
                              (kTwoPi * equivalent_radius_ * 0.8) * spec_.trace_width;
  if (spec_.layers >= 2) {
    const double gap = std::max(spec_.layer_pitch - spec_.trace_thickness, 1e-6);
    const double c_pair = kEps0 * spec_.rel_permittivity * overlap_area / gap;
    parasitic_capacitance_ = c_pair / static_cast<double>(spec_.layers - 1);
  } else {
    const double side_area = wire_length_ * spec_.trace_thickness;
    parasitic_capacitance_ =
        kEps0 * spec_.rel_permittivity * side_area / std::max(spec_.turn_spacing, 1e-6);
  }
}

double Coil::ac_resistance(double frequency) const {
  if (frequency <= 0.0) return dc_resistance_;
  const double omega = kTwoPi * frequency;
  const double skin_depth = std::sqrt(2.0 * spec_.resistivity / (omega * kMu0));
  const double t = spec_.trace_thickness;
  // 1-D skin-effect crowding factor across the trace thickness.
  const double t_eff = skin_depth * (1.0 - std::exp(-t / skin_depth));
  return dc_resistance_ * t / t_eff;
}

double Coil::self_resonance_frequency() const {
  return 1.0 / (kTwoPi * std::sqrt(inductance_ * parasitic_capacitance_));
}

double Coil::quality_factor(double frequency) const {
  const double omega = kTwoPi * frequency;
  return omega * inductance_ / ac_resistance(frequency);
}

CoilSpec implant_coil_spec() {
  // Paper Sec. III-B / ref [28]: 8 layers, 14 turns total, 38 x 2 x
  // 0.544 mm^3 on flexible substrate. Two turns per layer across seven
  // active layers keeps the published turn count within the 2 mm outline.
  CoilSpec spec;
  spec.outer_width = 38e-3;
  spec.outer_height = 2e-3;
  spec.turns_per_layer = 2;
  spec.layers = 7;
  spec.trace_width = 120e-6;
  spec.trace_thickness = 35e-6;
  spec.turn_spacing = 120e-6;
  spec.layer_pitch = 0.544e-3 / 8.0;
  return spec;
}

CoilSpec patch_coil_spec() {
  // Transmitting spiral on the 6 cm flexible patch (Fig. 5). The coil
  // itself is considerably smaller than the patch: the paper's measured
  // power decay (15 mW at 6 mm falling to ~1.2 mW at 17 mm) pins the
  // transmit-field extent to a ~12 mm equivalent radius — a 22 mm
  // spiral, with the rest of the patch carrying the electronics.
  CoilSpec spec;
  spec.outer_width = 22e-3;
  spec.outer_height = 22e-3;
  spec.turns_per_layer = 6;
  spec.layers = 1;
  spec.trace_width = 500e-6;
  spec.trace_thickness = 35e-6;
  spec.turn_spacing = 300e-6;
  spec.layer_pitch = 0.0;
  return spec;
}

}  // namespace ironic::magnetics
