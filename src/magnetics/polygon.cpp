#include "src/magnetics/polygon.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::magnetics {

using constants::kMu0;
using constants::kPi;
using constants::kTwoPi;

namespace {

Vec3 sub(const Vec3& p, const Vec3& q) { return {p.x - q.x, p.y - q.y, p.z - q.z}; }
Vec3 lerp(const Vec3& p, const Vec3& q, double t) {
  return {p.x + (q.x - p.x) * t, p.y + (q.y - p.y) * t, p.z + (q.z - p.z) * t};
}
double dot(const Vec3& p, const Vec3& q) { return p.x * q.x + p.y * q.y + p.z * q.z; }
double norm(const Vec3& p) { return std::sqrt(dot(p, p)); }

// Gauss–Legendre nodes/weights on [0, 1].
void gauss_legendre(int n, std::vector<double>& nodes, std::vector<double>& weights) {
  nodes.resize(static_cast<std::size_t>(n));
  weights.resize(static_cast<std::size_t>(n));
  // Newton iteration on Legendre polynomials (standard construction).
  for (int i = 0; i < n; ++i) {
    double x = std::cos(kPi * (i + 0.75) / (n + 0.5));
    for (int it = 0; it < 100; ++it) {
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      const double dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    double p0 = 1.0, p1 = x;
    for (int k = 2; k <= n; ++k) {
      const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
      p0 = p1;
      p1 = p2;
    }
    const double dp = n * (x * p1 - p0) / (x * x - 1.0);
    nodes[static_cast<std::size_t>(i)] = 0.5 * (1.0 - x);  // map [-1,1] -> [0,1]
    weights[static_cast<std::size_t>(i)] = 1.0 / ((1.0 - x * x) * dp * dp);
  }
}

}  // namespace

double mutual_segments(const Segment& s1, const Segment& s2, int points) {
  if (points < 2) throw std::invalid_argument("mutual_segments: need >= 2 points");
  const Vec3 d1 = sub(s1.b, s1.a);
  const Vec3 d2 = sub(s2.b, s2.a);
  const double alignment = dot(d1, d2);
  if (alignment == 0.0) return 0.0;  // orthogonal filaments do not couple

  std::vector<double> nodes, weights;
  gauss_legendre(points, nodes, weights);

  double sum = 0.0;
  for (int i = 0; i < points; ++i) {
    const Vec3 p1 = lerp(s1.a, s1.b, nodes[static_cast<std::size_t>(i)]);
    for (int j = 0; j < points; ++j) {
      const Vec3 p2 = lerp(s2.a, s2.b, nodes[static_cast<std::size_t>(j)]);
      const double r = norm(sub(p2, p1));
      if (r < 1e-12) {
        throw std::invalid_argument("mutual_segments: touching segments");
      }
      sum += weights[static_cast<std::size_t>(i)] *
             weights[static_cast<std::size_t>(j)] / r;
    }
  }
  return kMu0 / (4.0 * kPi) * alignment * sum;
}

double segment_self_inductance(double length, double gmd_radius) {
  if (length <= 0.0 || gmd_radius <= 0.0 || gmd_radius >= length) {
    throw std::invalid_argument("segment_self_inductance: bad geometry");
  }
  return kMu0 * length / kTwoPi * (std::log(2.0 * length / gmd_radius) - 1.0);
}

PolygonCoil PolygonCoil::rectangular(const CoilSpec& spec) {
  PolygonCoil coil;
  coil.gmd_radius_ = 0.2235 * (spec.trace_width + spec.trace_thickness);
  const double pitch = spec.trace_width + spec.turn_spacing;
  for (int layer = 0; layer < spec.layers; ++layer) {
    const double z = layer * spec.layer_pitch;
    for (int turn = 0; turn < spec.turns_per_layer; ++turn) {
      const double inset = spec.trace_width / 2.0 + turn * pitch;
      const double hw = spec.outer_width / 2.0 - inset;
      const double hh = spec.outer_height / 2.0 - inset;
      if (hw <= spec.trace_width || hh <= spec.trace_width) {
        throw std::invalid_argument("PolygonCoil: turns do not fit in the outline");
      }
      const std::array<Vec3, 4> corners = {Vec3{-hw, -hh, z}, Vec3{hw, -hh, z},
                                           Vec3{hw, hh, z}, Vec3{-hw, hh, z}};
      for (std::size_t k = 0; k < 4; ++k) {
        coil.segments_.push_back({corners[k], corners[(k + 1) % 4]});
      }
    }
  }
  return coil;
}

PolygonCoil PolygonCoil::circular(const CoilSpec& spec, int sides) {
  if (sides < 6) throw std::invalid_argument("PolygonCoil::circular: need >= 6 sides");
  PolygonCoil coil;
  coil.gmd_radius_ = 0.2235 * (spec.trace_width + spec.trace_thickness);
  const double pitch = spec.trace_width + spec.turn_spacing;
  const double r_outer = std::sqrt(spec.outer_width * spec.outer_height / kPi);
  for (int layer = 0; layer < spec.layers; ++layer) {
    const double z = layer * spec.layer_pitch;
    for (int turn = 0; turn < spec.turns_per_layer; ++turn) {
      const double radius = r_outer - spec.trace_width / 2.0 - turn * pitch;
      if (radius <= spec.trace_width) {
        throw std::invalid_argument("PolygonCoil: turns do not fit in the outline");
      }
      // Perimeter-preserving polygon radius so inductance converges from
      // the right side as `sides` grows.
      const double poly_r = radius * (kPi / sides) / std::sin(kPi / sides);
      for (int k = 0; k < sides; ++k) {
        const double a0 = kTwoPi * k / sides;
        const double a1 = kTwoPi * (k + 1) / sides;
        coil.segments_.push_back({{poly_r * std::cos(a0), poly_r * std::sin(a0), z},
                                  {poly_r * std::cos(a1), poly_r * std::sin(a1), z}});
      }
    }
  }
  return coil;
}

double PolygonCoil::inductance() const {
  double total = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const double len = norm(sub(segments_[i].b, segments_[i].a));
    total += segment_self_inductance(len, gmd_radius_);
    for (std::size_t j = i + 1; j < segments_.size(); ++j) {
      // Orientation is encoded in the segment direction; the Neumann
      // integral carries the sign through dl1 . dl2.
      total += 2.0 * mutual_segments(segments_[i], segments_[j], 8);
    }
  }
  return total;
}

PolygonCoil PolygonCoil::translated(const Vec3& offset) const {
  PolygonCoil out = *this;
  for (auto& s : out.segments_) {
    s.a.x += offset.x;
    s.a.y += offset.y;
    s.a.z += offset.z;
    s.b.x += offset.x;
    s.b.y += offset.y;
    s.b.z += offset.z;
  }
  return out;
}

PolygonCoil PolygonCoil::rotated_x(double angle) const {
  PolygonCoil out = *this;
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const auto rotate = [&](Vec3& p) {
    const double y = p.y * c - p.z * s;
    const double z = p.y * s + p.z * c;
    p.y = y;
    p.z = z;
  };
  for (auto& seg : out.segments_) {
    rotate(seg.a);
    rotate(seg.b);
  }
  return out;
}

namespace {

double coil_pair_mutual(const PolygonCoil& tx, const PolygonCoil& placed_rx) {
  double total = 0.0;
  for (const auto& s1 : tx.segments()) {
    for (const auto& s2 : placed_rx.segments()) {
      total += mutual_segments(s1, s2, 8);
    }
  }
  return total;
}

}  // namespace

double mutual_inductance(const PolygonCoil& tx, const PolygonCoil& rx,
                         double distance, double lateral_offset) {
  if (distance <= 0.0) {
    throw std::invalid_argument("mutual_inductance(polygon): distance must be > 0");
  }
  return coil_pair_mutual(tx, rx.translated({lateral_offset, 0.0, distance}));
}

double mutual_inductance_tilted(const PolygonCoil& tx, const PolygonCoil& rx,
                                double distance, double tilt,
                                double lateral_offset) {
  if (distance <= 0.0) {
    throw std::invalid_argument("mutual_inductance_tilted: distance must be > 0");
  }
  return coil_pair_mutual(
      tx, rx.rotated_x(tilt).translated({lateral_offset, 0.0, distance}));
}

double triaxial_coupling_rss(const PolygonCoil& tx, const PolygonCoil& rx,
                             double distance, double tilt, double lateral_offset) {
  if (distance <= 0.0) {
    throw std::invalid_argument("triaxial_coupling_rss: distance must be > 0");
  }
  // Tri-axial receiver under a tilt about x: the z-normal coil couples
  // as ~cos(tilt), the y-normal coil (the same coil pre-rotated 90 deg
  // about x) as ~sin(tilt), and the x-normal coil links essentially no
  // flux from a centered transmitter at any x-tilt — so the RSS over the
  // first two coils is the full tri-axial harvest for this sweep.
  const PolygonCoil z_coil = rx;
  const PolygonCoil y_coil = rx.rotated_x(kPi / 2.0);
  double sum = 0.0;
  for (const PolygonCoil* coil : {&z_coil, &y_coil}) {
    const double m = coil_pair_mutual(
        tx, coil->rotated_x(tilt).translated({lateral_offset, 0.0, distance}));
    sum += m * m;
  }
  return std::sqrt(sum);
}

}  // namespace ironic::magnetics
