#include "src/magnetics/link.hpp"

#include <cmath>
#include <stdexcept>

#include "src/magnetics/coupling.hpp"
#include "src/util/constants.hpp"

namespace ironic::magnetics {

using constants::kTwoPi;

InductiveLink::InductiveLink(LinkConfig config)
    : config_(std::move(config)), tx_(config_.tx), rx_(config_.rx) {
  if (config_.frequency <= 0.0) {
    throw std::invalid_argument("InductiveLink: frequency must be > 0");
  }
  recompute();
}

void InductiveLink::recompute() {
  mutual_ = mutual_inductance(tx_, rx_, config_.distance, config_.lateral_offset);
  coupling_ = mutual_ / std::sqrt(tx_.inductance() * rx_.inductance());
}

double InductiveLink::tx_tuning_capacitance() const {
  const double omega = kTwoPi * config_.frequency;
  return 1.0 / (omega * omega * tx_.inductance());
}

double InductiveLink::rx_tuning_capacitance() const {
  const double omega = kTwoPi * config_.frequency;
  return 1.0 / (omega * omega * rx_.inductance());
}

LinkAnalysis InductiveLink::analyze(double drive_amplitude, double load_resistance) const {
  if (load_resistance <= 0.0) {
    throw std::invalid_argument("InductiveLink::analyze: load must be > 0");
  }
  const double omega = kTwoPi * config_.frequency;
  const double r1 = tx_.ac_resistance(config_.frequency);
  const double r2 = rx_.ac_resistance(config_.frequency);

  // Series-series tuning: both reactances cancel at the carrier; what is
  // left is the resistive mesh with the reflected secondary impedance.
  const std::complex<double> z2(r2 + load_resistance, 0.0);
  const double om2 = omega * mutual_;
  const std::complex<double> z_reflected = om2 * om2 / z2;

  // Tissue eddy loss appears as extra series resistance in the primary.
  double r_tissue = 0.0;
  if (config_.tissue.has_value()) {
    r_tissue = config_.tissue->reflected_resistance(config_.frequency,
                                                    tx_.equivalent_radius());
  }
  const std::complex<double> z1 = std::complex<double>(r1 + r_tissue, 0.0) + z_reflected;

  LinkAnalysis out;
  out.coupling = coupling_;
  out.mutual = mutual_;
  out.i_primary = drive_amplitude / z1;
  out.i_secondary = std::complex<double>(0.0, om2) * out.i_primary / z2;
  out.power_in = 0.5 * drive_amplitude * out.i_primary.real();

  double p_load = 0.5 * std::norm(out.i_secondary) * load_resistance;
  // Field attenuation through the slab reduces the flux linking the
  // secondary; apply it to the delivered power.
  if (config_.tissue.has_value()) {
    p_load *= config_.tissue->power_attenuation(config_.frequency);
  }
  out.power_delivered = p_load;
  out.efficiency = out.power_in > 0.0 ? p_load / out.power_in : 0.0;
  return out;
}

double InductiveLink::optimal_load_resistance() const {
  const double r2 = rx_.ac_resistance(config_.frequency);
  const double q1 = tx_.quality_factor(config_.frequency);
  const double q2 = rx_.quality_factor(config_.frequency);
  return r2 * std::sqrt(1.0 + coupling_ * coupling_ * q1 * q2);
}

double InductiveLink::drive_for_power(double target_power, double load_resistance) const {
  if (target_power <= 0.0) {
    throw std::invalid_argument("InductiveLink::drive_for_power: target must be > 0");
  }
  // Delivered power scales with the square of the drive amplitude.
  const double probe = 1.0;
  const LinkAnalysis at_probe = analyze(probe, load_resistance);
  if (at_probe.power_delivered <= 0.0) {
    throw std::runtime_error("InductiveLink::drive_for_power: link delivers no power");
  }
  return probe * std::sqrt(target_power / at_probe.power_delivered);
}

void InductiveLink::set_distance(double distance) {
  if (distance <= 0.0) throw std::invalid_argument("InductiveLink: distance must be > 0");
  config_.distance = distance;
  recompute();
}

void InductiveLink::set_lateral_offset(double offset) {
  config_.lateral_offset = offset;
  recompute();
}

void InductiveLink::set_tissue(std::optional<TissueSlab> tissue) {
  config_.tissue = std::move(tissue);
}

spice::CoupledInductors& InductiveLink::add_to_circuit(
    spice::Circuit& circuit, const std::string& name, spice::NodeId tx_a,
    spice::NodeId tx_b, spice::NodeId rx_a, spice::NodeId rx_b) const {
  double r1 = tx_.ac_resistance(config_.frequency);
  if (config_.tissue.has_value()) {
    r1 += config_.tissue->reflected_resistance(config_.frequency,
                                               tx_.equivalent_radius());
  }
  // The slab's field attenuation maps onto an effective coupling
  // reduction in the time-domain model.
  double k_eff = coupling_;
  if (config_.tissue.has_value()) {
    k_eff *= config_.tissue->field_attenuation(config_.frequency);
  }
  return circuit.add<spice::CoupledInductors>(
      name, tx_a, tx_b, rx_a, rx_b, tx_.inductance(), rx_.inductance(), k_eff, r1,
      rx_.ac_resistance(config_.frequency));
}

}  // namespace ironic::magnetics
