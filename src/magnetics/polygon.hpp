// Segment-based (Greenhouse) coil geometry: straight-filament mutual
// inductance and polygonal turn loops.
//
// The implanted inductor is a 38 x 2 mm *rectangular* multi-layer spiral
// (paper ref [28]); the circular area-equivalent used by Coil is a good
// first-order model, and this module provides the exact-geometry check:
// every turn is a closed polygon of straight segments, self-inductance
// comes from segment self terms plus all signed segment-pair mutuals,
// and coil-to-coil coupling from the cross pairs.
#pragma once

#include <vector>

#include "src/magnetics/coil.hpp"

namespace ironic::magnetics {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct Segment {
  Vec3 a, b;
};

// Neumann mutual inductance of two straight filaments via Gauss–Legendre
// quadrature (`points` nodes per segment). Exact enough (<0.1 %) at
// points >= 8 for non-touching segments. [H]
double mutual_segments(const Segment& s1, const Segment& s2, int points = 12);

// Self-inductance of a straight filament of length l with geometric-mean
// -distance radius r: mu0 l / (2 pi) (ln(2l/r) - 1). [H]
double segment_self_inductance(double length, double gmd_radius);

class PolygonCoil {
 public:
  // Rectangular spiral using the spec's outline verbatim (not the
  // area-equivalent circle): turns shrink inward by trace pitch, layers
  // stack along z.
  static PolygonCoil rectangular(const CoilSpec& spec);
  // Circular spiral approximated by `sides`-gon turns (for validating
  // the polygon machinery against the elliptic-integral model).
  static PolygonCoil circular(const CoilSpec& spec, int sides = 32);

  const std::vector<Segment>& segments() const { return segments_; }
  double gmd_radius() const { return gmd_radius_; }

  // Greenhouse self-inductance: segment self terms + all pair mutuals
  // with orientation signs. [H]
  double inductance() const;

  // Translate the whole coil (used to position the second coil of a pair).
  PolygonCoil translated(const Vec3& offset) const;
  // Rotate about the x axis through the coil origin by `angle` radians —
  // models the tilt a coil picks up on a concave/convex body part
  // (paper Fig. 5) before it is translated into place.
  PolygonCoil rotated_x(double angle) const;

 private:
  std::vector<Segment> segments_;
  double gmd_radius_ = 0.0;
};

// Coil-to-coil mutual inductance: face-to-face separation `distance`
// along z, lateral misalignment along x. [H]
double mutual_inductance(const PolygonCoil& tx, const PolygonCoil& rx,
                         double distance, double lateral_offset = 0.0);

// Mutual inductance with the receiver tilted by `tilt` radians about its
// own x axis before placement. [H]
double mutual_inductance_tilted(const PolygonCoil& tx, const PolygonCoil& rx,
                                double distance, double tilt,
                                double lateral_offset = 0.0);

// Omnidirectional receiver (the paper's ref [25]): three mutually
// orthogonal copies of `rx`. Returns the root-sum-square coupling the
// tri-axial receiver harvests at the given tilt — nearly orientation-
// independent, unlike the single coil.
double triaxial_coupling_rss(const PolygonCoil& tx, const PolygonCoil& rx,
                             double distance, double tilt,
                             double lateral_offset = 0.0);

}  // namespace ironic::magnetics
