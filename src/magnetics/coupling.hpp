// Mutual inductance between circular filaments and between whole coils.
#pragma once

#include "src/magnetics/coil.hpp"

namespace ironic::magnetics {

// Mutual inductance of two coaxial circular filaments with radii a and b
// separated axially by d (Maxwell's formula, exact). [H]
double mutual_coaxial_filaments(double a, double b, double d);

// Mutual inductance of two parallel circular filaments whose centers are
// offset axially by d and laterally by rho, via numerical integration of
// the Neumann double integral. Falls back to the exact coaxial formula
// when rho ~ 0. `quadrature_points` per angular dimension. [H]
double mutual_filaments(double a, double b, double d, double rho,
                        int quadrature_points = 96);

// Coil-to-coil mutual inductance: face-to-face separation `distance`,
// lateral misalignment `lateral_offset`, summed over all filament pairs. [H]
double mutual_inductance(const Coil& tx, const Coil& rx, double distance,
                         double lateral_offset = 0.0);

// Coupling coefficient k = M / sqrt(L1 L2) for the same arrangement.
double coupling_coefficient(const Coil& tx, const Coil& rx, double distance,
                            double lateral_offset = 0.0);

}  // namespace ironic::magnetics
