#include "src/magnetics/me_transducer.hpp"

#include <algorithm>
#include <cmath>

namespace ironic::magnetics {

namespace {

// Near-field dipole magnitude of the TX coil along its axis, normalized
// to 1 at zero depth: H(d) = 1 / (1 + (d / d_ref)^3).
double dipole_falloff(double depth, double depth_ref) {
  const double d = std::max(0.0, depth) / depth_ref;
  return 1.0 / (1.0 + d * d * d);
}

}  // namespace

MeTransducer::MeTransducer(MeTransducerSpec spec) : spec_(spec) {
  axial_nominal_ = dipole_falloff(spec_.depth_nominal_m, spec_.depth_ref_m);
}

double MeTransducer::field_factor(double depth, double lateral_offset,
                                  double tissue_thickness) const {
  const double axial =
      dipole_falloff(depth, spec_.depth_ref_m) / axial_nominal_;
  const double u = lateral_offset / spec_.align_width_m;
  const double lateral = std::exp(-(u * u));
  const double tissue =
      std::exp(-spec_.tissue_np_per_m * std::max(0.0, tissue_thickness));
  return axial * lateral * tissue;
}

double MeTransducer::power_at(double depth, double lateral_offset,
                              double tissue_thickness) const {
  const double f = field_factor(depth, lateral_offset, tissue_thickness);
  return spec_.p_nominal_w * f * f;
}

double MeTransducer::efficiency_at(double depth, double lateral_offset,
                                   double tissue_thickness) const {
  const double f = field_factor(depth, lateral_offset, tissue_thickness);
  const double f2 = f * f;
  // eta(f2) = f2 / (f2 + (1 - eta0) / eta0): equals eta0 at f2 = 1,
  // monotone in the field, and bounded by 1 for any geometry.
  const double knee =
      (1.0 - spec_.efficiency_nominal) / spec_.efficiency_nominal;
  return f2 / (f2 + knee);
}

}  // namespace ironic::magnetics
