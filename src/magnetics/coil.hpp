// Multi-layer spiral inductor model (Greenhouse-style).
//
// The paper's receiving inductor is an 8-layer, 14-turn flexible-PCB
// spiral of 38 x 2 x 0.544 mm^3 (ref [28] of the paper); the transmitting
// inductor is a single-layer spiral on the 6 cm patch. This model
// computes self-inductance by summing loop self terms and all pairwise
// turn mutuals, plus ESR with skin effect, a parasitic-capacitance
// estimate, and the derived self-resonance frequency and quality factor.
#pragma once

#include <cstddef>
#include <vector>

namespace ironic::magnetics {

struct CoilSpec {
  // Outline. For rectangular coils (like the implanted inductor) we use
  // the area-equivalent circular radius — at coil-to-coil distances of a
  // few mm the coupling is dominated by enclosed area.
  double outer_width = 38e-3;    // [m]
  double outer_height = 2e-3;    // [m] (== width for a round coil)
  int turns_per_layer = 2;
  int layers = 8;
  double trace_width = 150e-6;   // [m]
  double trace_thickness = 35e-6;  // [m]
  double turn_spacing = 150e-6;  // edge-to-edge in-plane spacing [m]
  double layer_pitch = 68e-6;    // vertical distance between layers [m]
  double resistivity = 1.68e-8;  // conductor resistivity [Ohm m]
  double rel_permittivity = 3.4; // interlayer dielectric (polyimide)

  int total_turns() const { return turns_per_layer * layers; }
};

// One turn reduced to a circular filament for the field computations.
struct Filament {
  double radius = 0.0;  // [m]
  double z = 0.0;       // axial position relative to the coil face [m]
};

class Coil {
 public:
  explicit Coil(CoilSpec spec);

  const CoilSpec& spec() const { return spec_; }
  const std::vector<Filament>& filaments() const { return filaments_; }

  // Area-equivalent outer radius of the outline.
  double equivalent_radius() const { return equivalent_radius_; }
  // Self-inductance from loop self terms + all pairwise mutuals [H].
  double inductance() const { return inductance_; }
  // Series resistance at DC [Ohm].
  double dc_resistance() const { return dc_resistance_; }
  // Series resistance including skin effect at frequency f [Ohm].
  double ac_resistance(double frequency) const;
  // Lumped parasitic capacitance estimate (inter-layer plates) [F].
  double parasitic_capacitance() const { return parasitic_capacitance_; }
  // Self-resonance frequency [Hz].
  double self_resonance_frequency() const;
  // Unloaded quality factor at frequency f.
  double quality_factor(double frequency) const;
  // Total conductor length [m].
  double wire_length() const { return wire_length_; }

 private:
  CoilSpec spec_;
  double equivalent_radius_ = 0.0;
  std::vector<Filament> filaments_;
  double inductance_ = 0.0;
  double dc_resistance_ = 0.0;
  double parasitic_capacitance_ = 0.0;
  double wire_length_ = 0.0;
};

// Factory helpers for the two coils of the paper's system.
CoilSpec implant_coil_spec();  // 8-layer 14-turn 38 x 2 mm receiving coil
CoilSpec patch_coil_spec();    // single-layer spiral on the 6 cm patch

}  // namespace ironic::magnetics
