// Coil design-space search — the engineering loop of the paper's
// companion study (ref [28], "A Study of Multi-Layer Spiral Inductors
// for Remote Powering of Implantable Sensors"): within a fixed implant
// outline, choose layers / turns / trace width to hit an inductance
// target and maximize Q at the carrier.
#pragma once

#include <vector>

#include "src/exec/thread_pool.hpp"
#include "src/magnetics/coil.hpp"

namespace ironic::magnetics {

struct CoilDesignGoal {
  double target_inductance = 2e-6;  // [H]
  double tolerance = 0.25;          // relative band around the target
  double frequency = 5e6;           // Q evaluated here
  double min_srf_ratio = 4.0;       // SRF must exceed ratio * frequency
};

struct CoilCandidate {
  CoilSpec spec;
  double inductance = 0.0;
  double q = 0.0;
  double srf = 0.0;
  bool meets_target = false;
};

// Enumerate the grid {layers} x {turns per layer} x {trace widths} within
// the outline of `base` (other fields copied from it); returns all
// candidates that fit geometrically, sorted by Q descending. When `pool`
// is non-null the grid is evaluated in parallel; candidates are filled
// into grid-order slots before the sort, so the returned vector is
// bit-identical to the serial enumeration for any pool size.
std::vector<CoilCandidate> enumerate_coil_designs(
    const CoilSpec& base, const CoilDesignGoal& goal,
    const std::vector<int>& layer_options, const std::vector<int>& turn_options,
    const std::vector<double>& trace_width_options,
    exec::ThreadPool* pool = nullptr);

// Best candidate meeting the inductance band and SRF constraint; throws
// std::runtime_error if none qualifies.
CoilCandidate design_coil(const CoilSpec& base, const CoilDesignGoal& goal,
                          const std::vector<int>& layer_options,
                          const std::vector<int>& turn_options,
                          const std::vector<double>& trace_width_options,
                          exec::ThreadPool* pool = nullptr);

}  // namespace ironic::magnetics
