// Complete elliptic integrals, used by the coaxial-filament mutual
// inductance formula (Maxwell).
#pragma once

namespace ironic::magnetics {

// Complete elliptic integral of the first kind K(k), parameterized by the
// modulus k (not m = k^2). Valid for 0 <= k < 1.
double elliptic_k(double k);

// Complete elliptic integral of the second kind E(k), modulus convention.
// Valid for 0 <= k <= 1.
double elliptic_e(double k);

}  // namespace ironic::magnetics
