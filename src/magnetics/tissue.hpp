// Biological-tissue channel model.
//
// The paper measures the link through a 17 mm beef-sirloin slab and finds
// the received power nearly identical to air at the same distance: at
// 5 MHz the conductive loss of muscle tissue is small because the skin
// depth (~0.3 m) vastly exceeds the implantation depth. This model
// reproduces that behaviour from the tissue's electrical properties
// instead of hard-coding it: eddy-current (induced-field) attenuation
// through the slab plus a small dielectric-loading detune factor.
#pragma once

namespace ironic::magnetics {

struct TissueProperties {
  double conductivity = 0.59;       // sigma [S/m] (muscle near 5 MHz)
  double rel_permittivity = 250.0;  // epsilon_r (muscle near 5 MHz)
};

// Electromagnetic skin depth in the tissue at frequency f [m].
double tissue_skin_depth(const TissueProperties& props, double frequency);

class TissueSlab {
 public:
  TissueSlab(TissueProperties props, double thickness);

  const TissueProperties& properties() const { return props_; }
  double thickness() const { return thickness_; }

  // Power attenuation factor (<= 1) for a link whose flux crosses the
  // slab at frequency f: exp(-2 t / delta).
  double power_attenuation(double frequency) const;
  // Field (amplitude) attenuation factor exp(-t / delta).
  double field_attenuation(double frequency) const;
  // Eddy-loss resistance reflected into the transmit coil for a coil of
  // the given equivalent radius: a small series resistance proportional
  // to sigma * omega^2 (quasi-static loop-in-conductor estimate). [Ohm]
  double reflected_resistance(double frequency, double coil_radius) const;

 private:
  TissueProperties props_;
  double thickness_;
};

// Properties of beef sirloin used as muscle stand-in (paper Sec. III-B).
TissueProperties sirloin_properties();

}  // namespace ironic::magnetics
