// Carrier-frequency selection: the paper runs at 5 MHz; this utility
// shows where that sits — link efficiency rises with frequency (higher
// coil Q) until tissue loss and the coils' self-resonance take over.
#pragma once

#include "src/magnetics/link.hpp"

namespace ironic::magnetics {

struct FrequencyChoice {
  double frequency = 0.0;      // best carrier in the searched band [Hz]
  double efficiency = 0.0;     // link efficiency at the optimum
  double srf_margin = 0.0;     // min(SRF_tx, SRF_rx) / frequency
};

// Sweep [f_min, f_max] (log grid, `points` samples) and return the
// carrier maximizing link efficiency into the frequency-local optimal
// load, subject to staying below `srf_fraction` of both coils' SRF.
FrequencyChoice optimal_carrier_frequency(const LinkConfig& config, double f_min,
                                          double f_max, int points = 60,
                                          double srf_fraction = 0.5);

}  // namespace ironic::magnetics
