// Magnetoelectric (ME) power transducer: a magnetostrictive/
// piezoelectric laminate driven at its mechanical resonance by a
// low-frequency alternating magnetic field (arXiv 2412.02499). Unlike
// the 5 MHz inductive pair, the mm-scale film is excited by the *field
// magnitude*, not a tuned mutual inductance: delivered power follows
// the square of the local field, the field rolls off with the near-field
// dipole law of the transmit coil, and — the ME selling point — tissue
// is nearly transparent at the ~MHz acoustic-resonance carrier, so a
// sirloin slab costs percent-level attenuation instead of the inductive
// link's coupling collapse.
//
// The model is deliberately phasor-level (like magnetics::InductiveLink
// feeding the link budget): a normalized field factor vs. geometry,
// squared into power, with a saturating electro-mechanical efficiency.
#pragma once

namespace ironic::magnetics {

struct MeTransducerSpec {
  double resonance_hz = 1e6;      // laminate acoustic resonance (carrier)
  double depth_nominal_m = 20e-3; // implant depth the TX coil is tuned for
  double depth_ref_m = 12e-3;     // near-field dipole knee of the TX coil
  double align_width_m = 12e-3;   // lateral 1/e width of the field lobe
  // Field attenuation through tissue [Np/m]: ~2 means a 17 mm slab costs
  // ~3 % of field — the ME robustness story.
  double tissue_np_per_m = 2.0;
  double p_nominal_w = 4e-3;      // delivered power at the nominal depth
  double efficiency_nominal = 0.25;  // chain efficiency at the nominal point
};

class MeTransducer {
 public:
  explicit MeTransducer(MeTransducerSpec spec = {});

  const MeTransducerSpec& spec() const { return spec_; }

  // Local field magnitude relative to the nominal depth: exactly 1 at
  // (depth_nominal, 0 offset, no slab), monotonically non-increasing in
  // depth, lateral offset, and tissue thickness.
  double field_factor(double depth, double lateral_offset,
                      double tissue_thickness) const;

  // Delivered power [W]: p_nominal x field_factor^2.
  double power_at(double depth, double lateral_offset,
                  double tissue_thickness) const;

  // Saturating chain efficiency in (0, 1): efficiency_nominal at the
  // nominal field, approaching 1 only asymptotically as the field grows
  // (the laminate cannot out-deliver the field energy it intercepts).
  double efficiency_at(double depth, double lateral_offset,
                       double tissue_thickness) const;

 private:
  MeTransducerSpec spec_;
  double axial_nominal_ = 1.0;  // dipole falloff at the nominal depth
};

}  // namespace ironic::magnetics
