#include "src/magnetics/elliptic.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::magnetics {

// Arithmetic-geometric-mean evaluation: quadratic convergence, full
// double precision in < 10 iterations.
double elliptic_k(double k) {
  if (k < 0.0 || k >= 1.0) throw std::invalid_argument("elliptic_k: need 0 <= k < 1");
  double a = 1.0;
  double b = std::sqrt(1.0 - k * k);
  for (int i = 0; i < 40 && std::abs(a - b) > 1e-16 * a; ++i) {
    const double an = 0.5 * (a + b);
    b = std::sqrt(a * b);
    a = an;
  }
  return constants::kPi / (2.0 * a);
}

double elliptic_e(double k) {
  if (k < 0.0 || k > 1.0) throw std::invalid_argument("elliptic_e: need 0 <= k <= 1");
  if (k == 1.0) return 1.0;
  // AGM with the sum of squared differences (Abramowitz & Stegun 17.6).
  double a = 1.0;
  double b = std::sqrt(1.0 - k * k);
  double c = k;
  double sum = c * c / 2.0;
  double pow2 = 1.0;
  for (int i = 0; i < 40 && std::abs(c) > 1e-17; ++i) {
    const double an = 0.5 * (a + b);
    c = 0.5 * (a - b);
    b = std::sqrt(a * b);
    a = an;
    pow2 *= 2.0;
    sum += pow2 * c * c / 2.0;
  }
  return elliptic_k(k) * (1.0 - sum);
}

}  // namespace ironic::magnetics
