#include "src/fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/metrics.hpp"

namespace ironic::fault {

FaultInjector::FaultInjector(const FaultSchedule* schedule, const SimClock* clock,
                             util::Rng rng)
    : schedule_(schedule), clock_(clock), rng_(rng) {
  if (schedule_ == nullptr || clock_ == nullptr) {
    throw std::invalid_argument("FaultInjector: schedule and clock required");
  }
}

double FaultInjector::now() const { return clock_->now(); }

double FaultInjector::distance(double base) const {
  const auto* event = schedule_->active(FaultKind::kCouplingStep, now());
  return event != nullptr ? event->magnitude : base;
}

double FaultInjector::lateral_offset(double base) const {
  const auto* event = schedule_->active(FaultKind::kMisalignment, now());
  return event != nullptr ? event->magnitude : base;
}

std::optional<double> FaultInjector::tissue_thickness() const {
  const auto* event = schedule_->active(FaultKind::kTissueDrift, now());
  if (event == nullptr) return std::nullopt;
  return event->magnitude;
}

double FaultInjector::drive_scale() const {
  const auto* event = schedule_->active(FaultKind::kOvervoltage, now());
  return event != nullptr ? event->magnitude : 1.0;
}

double FaultInjector::rail_scale() const {
  const auto* event = schedule_->active(FaultKind::kLdoDropout, now());
  return event != nullptr ? event->magnitude : 1.0;
}

double FaultInjector::brownout_fraction(double t0, double t1) {
  double fraction = 0.0;
  for (const auto* event :
       schedule_->started_between(FaultKind::kBrownout, t0, t1)) {
    fraction += event->magnitude;
    note_applied(FaultKind::kBrownout);
  }
  return std::min(fraction, 1.0);
}

comms::Channel FaultInjector::wrap(comms::Channel inner, LinkDirection link) {
  return [this, inner = std::move(inner), link](const comms::Bits& bits) {
    comms::Bits out = inner ? inner(bits) : bits;
    const double t = now();
    if (const auto* flip = schedule_->active(FaultKind::kBitFlip, t, link)) {
      bool applied = false;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng_.bernoulli(flip->magnitude)) {
          out[i] = !out[i];
          applied = true;
        }
      }
      if (applied) note_applied(FaultKind::kBitFlip);
    }
    if (const auto* burst = schedule_->active(FaultKind::kBurstError, t, link)) {
      if (!out.empty()) {
        const auto length = std::min<std::size_t>(
            out.size(), static_cast<std::size_t>(
                            std::max(1.0, burst->magnitude)));
        const std::size_t start =
            static_cast<std::size_t>(rng_.below(out.size() - length + 1));
        for (std::size_t i = start; i < start + length; ++i) out[i] = !out[i];
        note_applied(FaultKind::kBurstError);
      }
    }
    return out;
  };
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<int>(kind)];
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto count : injected_) total += count;
  return total;
}

void FaultInjector::note_applied(FaultKind kind) {
  ++injected_[static_cast<int>(kind)];
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance()
        .counter(std::string("fault.injected.") + fault_kind_name(kind))
        .add();
  }
}

}  // namespace ironic::fault
