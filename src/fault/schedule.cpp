#include "src/fault/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::fault {

void SimClock::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("SimClock::advance: dt must be >= 0");
  t_ += dt;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCouplingStep: return "coupling_step";
    case FaultKind::kMisalignment: return "misalignment";
    case FaultKind::kTissueDrift: return "tissue_drift";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kBurstError: return "burst_error";
    case FaultKind::kOvervoltage: return "overvoltage";
    case FaultKind::kLdoDropout: return "ldo_dropout";
    case FaultKind::kBrownout: return "brownout";
  }
  return "?";
}

void FaultSchedule::add(const FaultEvent& event) {
  if (event.start < 0.0) {
    throw std::invalid_argument("FaultSchedule::add: start must be >= 0");
  }
  events_.push_back(event);
}

const FaultEvent* FaultSchedule::active(FaultKind kind, double t,
                                        LinkDirection link) const {
  const FaultEvent* best = nullptr;
  for (const auto& event : events_) {
    if (event.kind != kind || !event.active_at(t) || !event.applies_to(link)) {
      continue;
    }
    if (best == nullptr || event.start >= best->start) best = &event;
  }
  return best;
}

std::vector<const FaultEvent*> FaultSchedule::started_between(FaultKind kind,
                                                              double t0,
                                                              double t1) const {
  std::vector<const FaultEvent*> hits;
  for (const auto& event : events_) {
    if (event.kind == kind && event.start > t0 && event.start <= t1) {
      hits.push_back(&event);
    }
  }
  return hits;
}

namespace {

// Small deterministic Poisson via inversion; the per-kind means are O(1)
// so the loop terminates quickly.
int poisson_draw(util::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = rng.uniform();
  int count = 0;
  while (product > limit) {
    product *= rng.uniform();
    ++count;
  }
  return count;
}

// Kind-specific magnitude ranges, spanning the paper's operating space:
// coil separation up to the 20 mm where the link budget collapses,
// sirloin slabs up to the 17 mm measurement, ASK error floors, clamp-
// worthy overvoltage, sub-regulation rails, and patch brownout dips.
double draw_magnitude(util::Rng& rng, FaultKind kind) {
  switch (kind) {
    case FaultKind::kCouplingStep: return rng.uniform(8e-3, 20e-3);
    case FaultKind::kMisalignment: return rng.uniform(0.0, 10e-3);
    case FaultKind::kTissueDrift: return rng.uniform(5e-3, 20e-3);
    case FaultKind::kBitFlip: return rng.uniform(1e-3, 2e-2);
    case FaultKind::kBurstError:
      return static_cast<double>(4 + rng.below(21));  // 4..24 bits
    case FaultKind::kOvervoltage: return rng.uniform(1.5, 2.5);
    case FaultKind::kLdoDropout: return rng.uniform(0.3, 0.8);
    case FaultKind::kBrownout: return rng.uniform(0.02, 0.10);
  }
  return 0.0;
}

bool is_step_kind(FaultKind kind) {
  // Geometry/tissue changes are reconfigurations, not pulses: once the
  // coil moved, it stays moved until the next event.
  return kind == FaultKind::kCouplingStep || kind == FaultKind::kMisalignment ||
         kind == FaultKind::kTissueDrift;
}

}  // namespace

FaultSchedule FaultSchedule::stochastic(util::Rng& rng,
                                        const StochasticScheduleConfig& config) {
  if (config.horizon <= 0.0) {
    throw std::invalid_argument("FaultSchedule::stochastic: horizon must be > 0");
  }
  FaultSchedule schedule;
  for (int k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const int count = poisson_draw(rng, config.events_per_kind[k]);
    for (int i = 0; i < count; ++i) {
      FaultEvent event;
      event.kind = kind;
      event.start = rng.uniform(0.0, config.horizon);
      event.magnitude = draw_magnitude(rng, kind);
      if (kind == FaultKind::kBrownout) {
        event.duration = 0.0;  // instantaneous charge loss
      } else if (is_step_kind(kind)) {
        event.duration = -1.0;  // permanent reconfiguration
      } else {
        event.duration =
            -config.mean_duration * std::log(1.0 - rng.uniform());
        if (event.duration <= 0.0) event.duration = config.mean_duration;
      }
      if (kind == FaultKind::kBitFlip || kind == FaultKind::kBurstError) {
        const auto dir = rng.below(3);
        event.direction = static_cast<LinkDirection>(dir);
      }
      schedule.add(event);
    }
  }
  return schedule;
}

}  // namespace ironic::fault
