#include "src/fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/comms/protocol.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/plant.hpp"
#include "src/fault/session.hpp"
#include "src/fault/validate.hpp"
#include "src/magnetics/link.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/telemetry.hpp"
#include "src/patch/scheduler.hpp"
#include "src/pm/rectifier.hpp"
#include "src/pm/regulator.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"
#include "src/util/fingerprint.hpp"
#include "src/util/rng.hpp"

namespace ironic::fault {
namespace {

// FNV-1a over every deterministic scenario field, in index order (see
// util::Fingerprint): equal fingerprints mean bit-identical campaigns.
std::uint64_t fingerprint_scenarios(const std::vector<ScenarioResult>& scenarios) {
  util::Fingerprint fp;
  for (const auto& s : scenarios) {
    fp.feed_i(s.index);
    fp.feed_i(s.exchanges);
    fp.feed_i(s.completed);
    fp.feed_i(s.lost);
    fp.feed_i(s.retries);
    fp.feed_i(s.recovered);
    fp.feed(s.recover_seconds);
    fp.feed(s.backoff_seconds);
    fp.feed_i(s.rate_fallbacks);
    fp.feed_i(s.rate_recoveries);
    fp.feed_i(s.restarts);
    fp.feed_i(s.checkpoints);
    fp.feed_i(s.ldo_violations);
    fp.feed_i(s.brownouts);
    fp.feed(s.final_rate);
    fp.feed(s.sim_time);
    for (const auto count : s.faults_injected) fp.feed(count);
    for (const auto code : s.adc_codes) fp.feed(static_cast<std::uint64_t>(code));
  }
  return fp.value();
}

// --- scenario runners -------------------------------------------------------

// One end-to-end scenario against `schedule`: measurements flow through
// the session layer over BER channels wrapped by the injector, each
// executed measurement runs a rectifier transient segment (spice_plant)
// or the behavioural front end, and the LDO regulation invariant is
// checked under the injected rail scale.
ScenarioResult run_link_scenario(const CampaignConfig& config, int index,
                                 const FaultSchedule& schedule,
                                 const SessionOptions& session_options,
                                 bool spice_plant,
                                 obs::MetricsRegistry& scoped) {
  ScenarioResult result;
  result.index = index;

  SimClock clock;
  FaultInjector injector(&schedule, &clock,
                         util::Rng::stream(config.seed, 3u * index + 0));
  util::Rng channel_rng = util::Rng::stream(config.seed, 3u * index + 1);
  LinkBudget budget;
  const double sensitivity = budget.p_nominal / 8.0;  // snr 8 when nominal
  RectifierPlant plant;
  plant.analysis_hints = config.analysis_hints;
  const pm::LdoModel ldo;

  const auto make_factory = [&](LinkDirection direction) -> ChannelFactory {
    return [&, direction](double rate) -> comms::Channel {
      comms::Channel physical = [&, rate](const comms::Bits& bits) {
        const double ber = bit_error_rate_for(budget.power_now(injector),
                                              sensitivity, rate);
        comms::Bits out = bits;
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (channel_rng.bernoulli(ber)) out[i] = !out[i];
        }
        return out;
      };
      return injector.wrap(std::move(physical), direction);
    };
  };

  const auto handler = [&](const comms::Request& request) -> comms::Response {
    comms::Response response;
    response.ok = true;
    if (request.command == comms::Command::kMeasure) {
      tally_active(injector, schedule, clock.now());
      const double power = budget.power_now(injector);
      const double amplitude = drive_amplitude(power, budget.p_nominal, injector);
      double vo;
      if (spice_plant) {
        vo = plant.measure(amplitude);
      } else {
        // Behavioural front end for the soak: peak minus a diode drop,
        // clamped at the four-diode chain voltage.
        vo = std::clamp(amplitude - 0.75, 0.0, 3.0);
      }
      if (!ldo.in_regulation(vo * injector.rail_scale())) {
        ++result.ldo_violations;
      }
      const std::uint16_t code = adc_code(vo);
      response.payload = {static_cast<std::uint8_t>(code >> 8),
                          static_cast<std::uint8_t>(code & 0xff)};
    }
    return response;
  };

  Session session(make_factory(LinkDirection::kDownlink),
                  make_factory(LinkDirection::kUplink), handler, &clock,
                  util::Rng::stream(config.seed, 3u * index + 2),
                  session_options);

  // Per-scenario (cohort) telemetry lands in the scoped child registry;
  // run_campaign aggregates the children into cohort.* percentiles.
  obs::Histogram* latency = nullptr;
  if constexpr (obs::kEnabled) {
    latency = &scoped.histogram("fault.scenario.exchange_latency_s");
  }

  for (int i = 0; i < config.exchanges; ++i) {
    const auto outcome = session.exchange(comms::Command::kMeasure);
    ++result.exchanges;
    if constexpr (obs::kEnabled) latency->observe(outcome.elapsed);
    if (outcome.ok && outcome.response->payload.size() >= 2) {
      ++result.completed;
      result.adc_codes.push_back(static_cast<std::uint16_t>(
          (outcome.response->payload[0] << 8) | outcome.response->payload[1]));
    } else {
      ++result.lost;
    }
    clock.advance(kCadence);
  }

  const auto& stats = session.stats();
  result.retries = stats.retries;
  result.recovered = stats.recovered;
  result.recover_seconds = stats.recover_seconds;
  result.backoff_seconds = stats.backoff_seconds;
  result.rate_fallbacks = stats.rate_fallbacks;
  result.rate_recoveries = stats.rate_recoveries;
  result.restarts = plant.restarts;
  result.checkpoints = plant.checkpoints;
  result.final_rate = session.current_rate();
  result.sim_time = clock.now();
  for (int k = 0; k < kFaultKindCount; ++k) {
    result.faults_injected[k] = injector.injected(static_cast<FaultKind>(k));
  }
  if constexpr (obs::kEnabled) {
    scoped.counter("fault.scenario.retries")
        .add(static_cast<std::uint64_t>(result.retries));
    scoped.counter("fault.scenario.lost")
        .add(static_cast<std::uint64_t>(result.lost));
    scoped.gauge("fault.scenario.final_rate_bps").set(result.final_rate);
  }
  return result;
}

// Scripted: a downlink burst-error window, an overvoltage transient, an
// LDO rail sag, then a permanent coupling collapse (the paper's 17 mm
// sirloin geometry) mid-session. The acceptance scenario: retries +
// backoff ride out the burst, the rate ladder buys back the link after
// the coupling drop, checkpoint restarts absorb the drive changes, and
// no measurement is lost.
FaultSchedule make_ask_burst_schedule(int index) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.35, 0.8,
                static_cast<double>(10 + 2 * index), LinkDirection::kDownlink});
  schedule.add({FaultKind::kOvervoltage, 0.55, 0.25, 1.8, LinkDirection::kBoth});
  schedule.add({FaultKind::kLdoDropout, 1.0, 0.3, 0.5, LinkDirection::kBoth});
  schedule.add({FaultKind::kCouplingStep, 1.3, -1.0, 17e-3, LinkDirection::kBoth});
  schedule.add({FaultKind::kTissueDrift, 1.3, -1.0, 17e-3, LinkDirection::kBoth});
  return schedule;
}

ScenarioResult run_ask_burst_scenario(const CampaignConfig& config, int index,
                                      obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_ask_burst_schedule(index);

  SessionOptions options;
  options.max_attempts = 20;
  options.exchange_timeout = 30.0;
  options.rate_ladder = {100e3, 50e3, 25e3, 12.5e3, 6.25e3};
  return run_link_scenario(config, index, schedule, options,
                           /*spice_plant=*/true, scoped);
}

// Stochastic soak: every fault kind drawn from a seeded schedule, the
// behavioural front end, and a tighter retry budget — partial recovery
// is allowed and the campaign reports the achieved rate.
FaultSchedule make_stochastic_schedule(const CampaignConfig& config, int index) {
  util::Rng schedule_rng = util::Rng::stream(config.seed, 1000u + index);
  StochasticScheduleConfig stochastic;
  stochastic.horizon = 0.25 * config.exchanges + 1.0;
  return FaultSchedule::stochastic(schedule_rng, stochastic);
}

ScenarioResult run_stochastic_scenario(const CampaignConfig& config, int index,
                                       obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_stochastic_schedule(config, index);

  SessionOptions options;
  options.max_attempts = 10;
  options.exchange_timeout = 10.0;
  return run_link_scenario(config, index, schedule, options,
                           /*spice_plant=*/false, scoped);
}

// Brownouts against the degradation ladder: injected charge dips strike
// a degrading mission; the ladder sheds bluetooth, then cadence, then
// everything, and the scenario records what survived.
patch::DegradedMissionOptions make_brownout_options(const CampaignConfig& config,
                                                    int index) {
  util::Rng rng = util::Rng::stream(config.seed, 2000u + index);
  patch::DegradedMissionOptions options;
  options.plan.connect_time = 20.0;
  options.measurement_interval = 180.0;
  options.horizon = 6.0 * 3600.0;
  const int dips = 2 + static_cast<int>(rng.below(3));
  for (int i = 0; i < dips; ++i) {
    options.brownouts.push_back(
        {rng.uniform(600.0, 0.6 * options.horizon), rng.uniform(0.05, 0.20)});
  }
  return options;
}

ScenarioResult run_brownout_scenario(const CampaignConfig& config, int index,
                                     obs::MetricsRegistry& scoped) {
  const patch::DegradedMissionOptions options = make_brownout_options(config, index);
  patch::BatterySpec battery;
  battery.capacity_mah = 100.0;

  const auto summary = patch::simulate_degrading_mission({}, battery, options);

  ScenarioResult result;
  result.index = index;
  result.exchanges = summary.measurements + summary.measurements_shed;
  result.completed = summary.measurements;
  result.lost = 0;  // shed-by-policy is graceful degradation, not loss
  result.brownouts = summary.brownouts_applied;
  result.faults_injected[static_cast<int>(FaultKind::kBrownout)] =
      static_cast<std::uint64_t>(summary.brownouts_applied);
  result.sim_time =
      summary.shutdown_time > 0.0 ? summary.shutdown_time : options.horizon;
  if constexpr (obs::kEnabled) {
    scoped.counter("fault.scenario.lost")
        .add(static_cast<std::uint64_t>(result.lost));
    scoped.gauge("fault.scenario.measurements_completed")
        .set(static_cast<double>(result.completed));
    scoped.gauge("fault.scenario.brownouts")
        .set(static_cast<double>(result.brownouts));
  }
  return result;
}

// --- static plan validation -------------------------------------------------

std::string plan_label(const CampaignConfig& config, int index) {
  return config.name + " scenario " + std::to_string(index);
}

// Peak |node voltage| of the shared rectifier plant at nominal drive,
// from the static interval-envelope pass. Computed once per process:
// the plant topology is fixed, and reachability is anchored at the
// nominal operating point.
double plant_envelope_vmax() {
  static const double vmax = [] {
    const auto ckt = RectifierPlant::build(kNominalDrive);
    const auto report = spice::analysis::analyze(*ckt);
    double peak = 0.0;
    for (const auto& node : report.envelope.nodes) {
      if (std::isfinite(node.lo)) peak = std::max(peak, std::abs(node.lo));
      if (std::isfinite(node.hi)) peak = std::max(peak, std::abs(node.hi));
    }
    return peak;
  }();
  return vmax;
}

void validate_ask_burst_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon = kCadence * config.exchanges;
  context.envelope_vmax = plant_envelope_vmax();
  // An overvoltage only matters if the scaled drive can push the rail
  // past the LDO's input floor.
  context.overvoltage_limit = pm::LdoSpec{}.min_input_voltage();
  require_valid_schedule(make_ask_burst_schedule(index), context,
                         plan_label(config, index));
}

void validate_stochastic_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon = kCadence * config.exchanges + 1.0;  // generator horizon
  require_valid_schedule(make_stochastic_schedule(config, index), context,
                         plan_label(config, index));
}

void validate_brownout_plan(const CampaignConfig& config, int index) {
  const auto options = make_brownout_options(config, index);
  FaultSchedule schedule;
  for (const auto& dip : options.brownouts) {
    schedule.add({FaultKind::kBrownout, dip.time, 0.0, dip.fraction,
                  LinkDirection::kBoth});
  }
  PlanContext context;
  context.horizon = options.horizon;
  require_valid_schedule(schedule, context, plan_label(config, index));
}

using ScenarioRunner = ScenarioResult (*)(const CampaignConfig&, int,
                                          obs::MetricsRegistry&);
using PlanValidator = void (*)(const CampaignConfig&, int);

struct NamedCampaign {
  const char* name;
  ScenarioRunner run;
  PlanValidator validate;
};

constexpr NamedCampaign kCampaigns[] = {
    {"ask_burst_coupling_drop", run_ask_burst_scenario, validate_ask_burst_plan},
    {"stochastic_soak", run_stochastic_scenario, validate_stochastic_plan},
    {"brownout_shedding", run_brownout_scenario, validate_brownout_plan},
};

}  // namespace

std::vector<std::string> campaign_names() {
  std::vector<std::string> names;
  for (const auto& campaign : kCampaigns) names.emplace_back(campaign.name);
  return names;
}

bool is_campaign(const std::string& name) {
  for (const auto& campaign : kCampaigns) {
    if (name == campaign.name) return true;
  }
  return false;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.scenarios < 1 || config.exchanges < 1) {
    throw std::invalid_argument("run_campaign: scenarios and exchanges must be >= 1");
  }
  const NamedCampaign* chosen = nullptr;
  for (const auto& campaign : kCampaigns) {
    if (config.name == campaign.name) chosen = &campaign;
  }
  if (chosen == nullptr) {
    throw std::invalid_argument("run_campaign: unknown campaign '" + config.name + "'");
  }

  // Static pre-validation: every scenario's fault plan is checked against
  // the run horizon, magnitude domains, and envelope reachability before
  // any scenario executes (throws std::invalid_argument on a bad plan).
  for (int j = 0; j < config.scenarios; ++j) chosen->validate(config, j);

  CampaignResult result;
  result.name = config.name;
  result.scenarios.resize(static_cast<std::size_t>(config.scenarios));

  // One labelled child registry per scenario, forked before the workers
  // start: scenario j records into scoped[j] only, so cohort statistics
  // (and the fingerprint) are independent of the thread count.
  auto& registry = obs::MetricsRegistry::instance();
  std::vector<std::shared_ptr<obs::MetricsRegistry>> scoped;
  scoped.reserve(static_cast<std::size_t>(config.scenarios));
  for (int j = 0; j < config.scenarios; ++j) {
    scoped.push_back(registry.scoped(
        {{"campaign", config.name}, {"scenario", std::to_string(j)}}));
  }

  // Scenario j writes slot j and draws only from streams keyed by
  // (seed, j): bit-identical output for any thread count.
  exec::ThreadPool pool(config.threads);
  exec::ParallelForOptions options;
  options.grain = 1;
  exec::parallel_for(
      pool, 0, static_cast<std::size_t>(config.scenarios),
      [&](std::size_t j) {
        result.scenarios[j] =
            chosen->run(config, static_cast<int>(j), *scoped[j]);
      },
      options);

  int disturbed = 0;
  for (const auto& s : result.scenarios) {
    result.total_exchanges += s.exchanges;
    result.completed += s.completed;
    result.lost_measurements += s.lost;
    result.retries += s.retries;
    result.restarts += s.restarts;
    result.checkpoints += s.checkpoints;
    disturbed += s.recovered + s.lost;
    result.mean_time_to_recover += s.recover_seconds;
    for (int k = 0; k < kFaultKindCount; ++k) {
      result.faults_injected[k] += s.faults_injected[k];
    }
  }
  int recovered = 0;
  for (const auto& s : result.scenarios) recovered += s.recovered;
  result.recovery_rate =
      disturbed > 0 ? static_cast<double>(recovered) / disturbed : 1.0;
  result.mean_time_to_recover =
      recovered > 0 ? result.mean_time_to_recover / recovered : 0.0;
  result.fingerprint = fingerprint_scenarios(result.scenarios);

  if constexpr (obs::kEnabled) {
    registry.counter("fault.campaign.runs").add();
    registry.gauge("fault.campaign.recovery_rate").set(result.recovery_rate);
    registry.gauge("fault.campaign.lost_measurements")
        .set(static_cast<double>(result.lost_measurements));
    registry.gauge("fault.campaign.mean_time_to_recover_s")
        .set(result.mean_time_to_recover);
    // Fold the per-scenario children into cohort.<campaign>.* gauges
    // (sessions/count/min/max/mean/p50/p95/p99 per metric) while the
    // children are still alive; they expire when `scoped` goes away.
    registry.publish_cohorts("cohort." + config.name);
    auto& sink = obs::TelemetrySink::instance();
    if (sink.is_open()) {
      for (const auto& child : scoped) sink.emit_metrics_snapshot(*child);
      sink.emit_event("fault.campaign", "complete",
                      {{"campaign", obs::json::Value(config.name)},
                       {"recovery_rate", obs::json::Value(result.recovery_rate)},
                       {"lost", obs::json::Value(static_cast<std::uint64_t>(
                                    result.lost_measurements))}});
    }
  }
  return result;
}

}  // namespace ironic::fault
