#include "src/fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/comms/protocol.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/fault/bioz.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/plant.hpp"
#include "src/link/phy.hpp"
#include "src/fault/session.hpp"
#include "src/fault/validate.hpp"
#include "src/magnetics/link.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/telemetry.hpp"
#include "src/patch/scheduler.hpp"
#include "src/pm/rectifier.hpp"
#include "src/pm/regulator.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"
#include "src/util/fingerprint.hpp"
#include "src/util/rng.hpp"

namespace ironic::fault {
namespace {

// FNV-1a over every deterministic scenario field, in index order (see
// util::Fingerprint): equal fingerprints mean bit-identical campaigns.
std::uint64_t fingerprint_scenarios(const std::vector<ScenarioResult>& scenarios) {
  util::Fingerprint fp;
  for (const auto& s : scenarios) {
    fp.feed_i(s.index);
    fp.feed_i(s.exchanges);
    fp.feed_i(s.completed);
    fp.feed_i(s.lost);
    fp.feed_i(s.retries);
    fp.feed_i(s.recovered);
    fp.feed(s.recover_seconds);
    fp.feed(s.backoff_seconds);
    fp.feed_i(s.rate_fallbacks);
    fp.feed_i(s.rate_recoveries);
    fp.feed_i(s.restarts);
    fp.feed_i(s.checkpoints);
    fp.feed_i(s.ldo_violations);
    fp.feed_i(s.brownouts);
    fp.feed(s.final_rate);
    fp.feed(s.sim_time);
    for (const auto count : s.faults_injected) fp.feed(count);
    for (const auto code : s.adc_codes) fp.feed(static_cast<std::uint64_t>(code));
  }
  return fp.value();
}

// --- scenario runners -------------------------------------------------------

// One end-to-end scenario against `schedule`: measurements flow through
// the session layer over BER channels wrapped by the injector and the
// backend's modulation hooks, each executed measurement drives the
// scenario's workload (rectifier transient segment, behavioural front
// end, or the bio-impedance ladder), and the LDO regulation invariant
// is checked under the injected rail scale.
ScenarioResult run_link_scenario(const CampaignConfig& config, int index,
                                 const FaultSchedule& schedule,
                                 const SessionOptions& session_options,
                                 Workload workload,
                                 obs::MetricsRegistry& scoped) {
  ScenarioResult result;
  result.index = index;

  SimClock clock;
  FaultInjector injector(&schedule, &clock,
                         util::Rng::stream(config.seed, 3u * index + 0));
  util::Rng channel_rng = util::Rng::stream(config.seed, 3u * index + 1);
  LinkBudget budget(config.link);
  const double sensitivity = budget.p_nominal / 8.0;  // snr 8 when nominal
  const double cadence = budget.nominal().cadence_s;
  RectifierPlant plant;
  plant.carrier_hz = budget.nominal().carrier_hz;
  plant.analysis_hints = config.analysis_hints;
  BioZPlant bioz;
  bioz.analysis_hints = config.analysis_hints;
  const pm::LdoModel ldo;

  const auto make_factory = [&](LinkDirection direction) -> ChannelFactory {
    return [&, direction](double rate) -> comms::Channel {
      comms::Channel physical = [&, rate](const comms::Bits& bits) {
        const double ber = budget.bit_error_rate(budget.power_now(injector),
                                                 sensitivity, rate);
        comms::Bits out = bits;
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (channel_rng.bernoulli(ber)) out[i] = !out[i];
        }
        return out;
      };
      // Fault wrapper inside, backend modulation outside: burst faults
      // corrupt the backend's channel symbols (PWM chips on the ME
      // uplink), and the codec gets to absorb what it can.
      comms::Channel faulted = injector.wrap(std::move(physical), direction);
      return direction == LinkDirection::kUplink
                 ? budget.phy->wrap_uplink(std::move(faulted))
                 : budget.phy->wrap_downlink(std::move(faulted));
    };
  };

  const auto handler = [&](const comms::Request& request) -> comms::Response {
    comms::Response response;
    response.ok = true;
    if (request.command == comms::Command::kMeasure) {
      tally_active(injector, schedule, clock.now());
      const double power = budget.power_now(injector);
      const double amplitude = budget.drive_amplitude(power, injector);
      double vo = 0.0;    // what the ADC digitizes
      double rail = 0.0;  // what the LDO regulates
      switch (workload) {
        case Workload::kLactateSpice:
          vo = plant.measure(amplitude);
          rail = vo;
          break;
        case Workload::kLactateBehavioural:
          // Behavioural front end for the soak: peak minus a diode
          // drop, clamped at the four-diode chain voltage.
          vo = std::clamp(amplitude - 0.75, 0.0, 3.0);
          rail = vo;
          break;
        case Workload::kBioZ:
          // The sense tap is a tissue voltage, not the supply: the rail
          // the LDO sees is the behavioural rectifier output.
          vo = bioz.measure(amplitude,
                            bioz_tissue_scale(injector.tissue_thickness()));
          rail = std::clamp(amplitude - 0.75, 0.0, 3.0);
          break;
      }
      if (!ldo.in_regulation(rail * injector.rail_scale())) {
        ++result.ldo_violations;
      }
      const std::uint16_t code = adc_code(vo);
      response.payload = {static_cast<std::uint8_t>(code >> 8),
                          static_cast<std::uint8_t>(code & 0xff)};
    }
    return response;
  };

  Session session(make_factory(LinkDirection::kDownlink),
                  make_factory(LinkDirection::kUplink), handler, &clock,
                  util::Rng::stream(config.seed, 3u * index + 2),
                  session_options);

  // Per-scenario (cohort) telemetry lands in the scoped child registry;
  // run_campaign aggregates the children into cohort.* percentiles.
  obs::Histogram* latency = nullptr;
  if constexpr (obs::kEnabled) {
    latency = &scoped.histogram("fault.scenario.exchange_latency_s");
  }

  for (int i = 0; i < config.exchanges; ++i) {
    const auto outcome = session.exchange(comms::Command::kMeasure);
    ++result.exchanges;
    if constexpr (obs::kEnabled) latency->observe(outcome.elapsed);
    if (outcome.ok && outcome.response->payload.size() >= 2) {
      ++result.completed;
      result.adc_codes.push_back(static_cast<std::uint16_t>(
          (outcome.response->payload[0] << 8) | outcome.response->payload[1]));
    } else {
      ++result.lost;
    }
    clock.advance(cadence);
  }

  const auto& stats = session.stats();
  result.retries = stats.retries;
  result.recovered = stats.recovered;
  result.recover_seconds = stats.recover_seconds;
  result.backoff_seconds = stats.backoff_seconds;
  result.rate_fallbacks = stats.rate_fallbacks;
  result.rate_recoveries = stats.rate_recoveries;
  result.restarts = plant.restarts;
  // The bio-impedance plant is stateless; its committed work is the
  // measurement count, reported in the same column.
  result.checkpoints =
      workload == Workload::kBioZ ? bioz.measurements : plant.checkpoints;
  result.power_queries = budget.power_queries;
  result.final_rate = session.current_rate();
  result.sim_time = clock.now();
  for (int k = 0; k < kFaultKindCount; ++k) {
    result.faults_injected[k] = injector.injected(static_cast<FaultKind>(k));
  }
  if constexpr (obs::kEnabled) {
    scoped.counter("fault.scenario.retries")
        .add(static_cast<std::uint64_t>(result.retries));
    scoped.counter("fault.scenario.lost")
        .add(static_cast<std::uint64_t>(result.lost));
    scoped.gauge("fault.scenario.final_rate_bps").set(result.final_rate);
  }
  return result;
}

// Scripted: a downlink burst-error window, an overvoltage transient, an
// LDO rail sag, then a permanent coupling collapse (the paper's 17 mm
// sirloin geometry) mid-session. The acceptance scenario: retries +
// backoff ride out the burst, the rate ladder buys back the link after
// the coupling drop, checkpoint restarts absorb the drive changes, and
// no measurement is lost.
FaultSchedule make_ask_burst_schedule(int index) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.35, 0.8,
                static_cast<double>(10 + 2 * index), LinkDirection::kDownlink});
  schedule.add({FaultKind::kOvervoltage, 0.55, 0.25, 1.8, LinkDirection::kBoth});
  schedule.add({FaultKind::kLdoDropout, 1.0, 0.3, 0.5, LinkDirection::kBoth});
  schedule.add({FaultKind::kCouplingStep, 1.3, -1.0, 17e-3, LinkDirection::kBoth});
  schedule.add({FaultKind::kTissueDrift, 1.3, -1.0, 17e-3, LinkDirection::kBoth});
  return schedule;
}

ScenarioResult run_ask_burst_scenario(const CampaignConfig& config, int index,
                                      obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_ask_burst_schedule(index);

  SessionOptions options;
  options.max_attempts = 20;
  options.exchange_timeout = 30.0;
  options.rate_ladder = {100e3, 50e3, 25e3, 12.5e3, 6.25e3};
  return run_link_scenario(config, index, schedule, options,
                           Workload::kLactateSpice, scoped);
}

// Stochastic soak: every fault kind drawn from a seeded schedule, the
// behavioural front end, and a tighter retry budget — partial recovery
// is allowed and the campaign reports the achieved rate.
FaultSchedule make_stochastic_schedule(const CampaignConfig& config, int index) {
  util::Rng schedule_rng = util::Rng::stream(config.seed, 1000u + index);
  StochasticScheduleConfig stochastic;
  stochastic.horizon = 0.25 * config.exchanges + 1.0;
  return FaultSchedule::stochastic(schedule_rng, stochastic);
}

ScenarioResult run_stochastic_scenario(const CampaignConfig& config, int index,
                                       obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_stochastic_schedule(config, index);

  SessionOptions options;
  options.max_attempts = 10;
  options.exchange_timeout = 10.0;
  return run_link_scenario(config, index, schedule, options,
                           Workload::kLactateBehavioural, scoped);
}

// The magnetoelectric acceptance scenario: a chip-level burst strikes
// the PWM backscatter uplink, then the wearable field coil slips 10 mm
// off the lobe axis while a 17 mm slab appears — a power collapse the
// inductive link would not survive at rate, which the ME rate ladder
// buys back — and a rail sag lands near the end. Event times are
// fractions of the horizon so the plan stays valid for any --exchanges.
FaultSchedule make_me_schedule(const CampaignConfig& config, int index) {
  const double horizon =
      link::nominal_profile("me").cadence_s * config.exchanges;
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.12 * horizon, 0.25 * horizon,
                static_cast<double>(12 + 2 * index), LinkDirection::kUplink});
  schedule.add({FaultKind::kMisalignment, 0.5 * horizon, -1.0, 10e-3,
                LinkDirection::kBoth});
  schedule.add({FaultKind::kTissueDrift, 0.5 * horizon, -1.0, 17e-3,
                LinkDirection::kBoth});
  schedule.add({FaultKind::kLdoDropout, 0.8 * horizon, 0.08 * horizon, 0.5,
                LinkDirection::kBoth});
  return schedule;
}

ScenarioResult run_me_scenario(const CampaignConfig& config, int index,
                               obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_me_schedule(config, index);

  SessionOptions options;
  options.max_attempts = 20;
  options.exchange_timeout = 30.0;
  options.rate_ladder = {4e3, 2e3, 1e3};
  return run_link_scenario(config, index, schedule, options,
                           Workload::kLactateSpice, scoped);
}

// Bio-impedance under drift: a permanent Re/Ri drift (oedema onset)
// shifts the measured codes mid-session while a downlink burst and a
// rail sag exercise the retry and regulation paths around it.
FaultSchedule make_bioz_schedule(const CampaignConfig& config, int index) {
  const double horizon =
      link::nominal_profile(config.link).cadence_s * config.exchanges;
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.15 * horizon, 0.2 * horizon,
                static_cast<double>(10 + 2 * index), LinkDirection::kDownlink});
  schedule.add({FaultKind::kTissueDrift, 0.45 * horizon, -1.0,
                (14.0 + 2.0 * index) * 1e-3, LinkDirection::kBoth});
  schedule.add({FaultKind::kLdoDropout, 0.75 * horizon, 0.1 * horizon, 0.55,
                LinkDirection::kBoth});
  return schedule;
}

ScenarioResult run_bioz_scenario(const CampaignConfig& config, int index,
                                 obs::MetricsRegistry& scoped) {
  const FaultSchedule schedule = make_bioz_schedule(config, index);

  SessionOptions options;
  options.max_attempts = 12;
  options.exchange_timeout = 10.0;
  return run_link_scenario(config, index, schedule, options, Workload::kBioZ,
                           scoped);
}

// Brownouts against the degradation ladder: injected charge dips strike
// a degrading mission; the ladder sheds bluetooth, then cadence, then
// everything, and the scenario records what survived.
patch::DegradedMissionOptions make_brownout_options(const CampaignConfig& config,
                                                    int index) {
  util::Rng rng = util::Rng::stream(config.seed, 2000u + index);
  patch::DegradedMissionOptions options;
  options.plan.connect_time = 20.0;
  options.measurement_interval = 180.0;
  options.horizon = 6.0 * 3600.0;
  const int dips = 2 + static_cast<int>(rng.below(3));
  for (int i = 0; i < dips; ++i) {
    options.brownouts.push_back(
        {rng.uniform(600.0, 0.6 * options.horizon), rng.uniform(0.05, 0.20)});
  }
  return options;
}

ScenarioResult run_brownout_scenario(const CampaignConfig& config, int index,
                                     obs::MetricsRegistry& scoped) {
  const patch::DegradedMissionOptions options = make_brownout_options(config, index);
  patch::BatterySpec battery;
  battery.capacity_mah = 100.0;

  const auto summary = patch::simulate_degrading_mission({}, battery, options);

  ScenarioResult result;
  result.index = index;
  result.exchanges = summary.measurements + summary.measurements_shed;
  result.completed = summary.measurements;
  result.lost = 0;  // shed-by-policy is graceful degradation, not loss
  result.brownouts = summary.brownouts_applied;
  result.faults_injected[static_cast<int>(FaultKind::kBrownout)] =
      static_cast<std::uint64_t>(summary.brownouts_applied);
  result.sim_time =
      summary.shutdown_time > 0.0 ? summary.shutdown_time : options.horizon;
  if constexpr (obs::kEnabled) {
    scoped.counter("fault.scenario.lost")
        .add(static_cast<std::uint64_t>(result.lost));
    scoped.gauge("fault.scenario.measurements_completed")
        .set(static_cast<double>(result.completed));
    scoped.gauge("fault.scenario.brownouts")
        .set(static_cast<double>(result.brownouts));
  }
  return result;
}

// --- static plan validation -------------------------------------------------

std::string plan_label(const CampaignConfig& config, int index) {
  return config.name + " scenario " + std::to_string(index);
}

// Peak |node voltage| of the shared rectifier plant at nominal drive,
// from the static interval-envelope pass. Computed once per process:
// the plant topology is fixed, and reachability is anchored at the
// nominal operating point.
double plant_envelope_vmax() {
  static const double vmax = [] {
    const auto ckt = RectifierPlant::build(kNominalDrive);
    const auto report = spice::analysis::analyze(*ckt);
    double peak = 0.0;
    for (const auto& node : report.envelope.nodes) {
      if (std::isfinite(node.lo)) peak = std::max(peak, std::abs(node.lo));
      if (std::isfinite(node.hi)) peak = std::max(peak, std::abs(node.hi));
    }
    return peak;
  }();
  return vmax;
}

void validate_ask_burst_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon = kCadence * config.exchanges;
  context.envelope_vmax = plant_envelope_vmax();
  // An overvoltage only matters if the scaled drive can push the rail
  // past the LDO's input floor.
  context.overvoltage_limit = pm::LdoSpec{}.min_input_voltage();
  require_valid_schedule(make_ask_burst_schedule(index), context,
                         plan_label(config, index));
}

void validate_stochastic_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon = kCadence * config.exchanges + 1.0;  // generator horizon
  require_valid_schedule(make_stochastic_schedule(config, index), context,
                         plan_label(config, index));
}

void validate_me_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon = link::nominal_profile("me").cadence_s * config.exchanges;
  require_valid_schedule(make_me_schedule(config, index), context,
                         plan_label(config, index));
}

void validate_bioz_plan(const CampaignConfig& config, int index) {
  PlanContext context;
  context.horizon =
      link::nominal_profile(config.link).cadence_s * config.exchanges;
  require_valid_schedule(make_bioz_schedule(config, index), context,
                         plan_label(config, index));
}

void validate_brownout_plan(const CampaignConfig& config, int index) {
  const auto options = make_brownout_options(config, index);
  FaultSchedule schedule;
  for (const auto& dip : options.brownouts) {
    schedule.add({FaultKind::kBrownout, dip.time, 0.0, dip.fraction,
                  LinkDirection::kBoth});
  }
  PlanContext context;
  context.horizon = options.horizon;
  require_valid_schedule(schedule, context, plan_label(config, index));
}

using ScenarioRunner = ScenarioResult (*)(const CampaignConfig&, int,
                                          obs::MetricsRegistry&);
using PlanValidator = void (*)(const CampaignConfig&, int);

struct NamedCampaign {
  const char* name;
  ScenarioRunner run;
  PlanValidator validate;
  // Non-null pins the campaign to a specific LinkPhy backend (the
  // scenario script is written for that physical layer); null runs on
  // config.link.
  const char* backend;
};

constexpr NamedCampaign kCampaigns[] = {
    {"ask_burst_coupling_drop", run_ask_burst_scenario, validate_ask_burst_plan,
     nullptr},
    {"stochastic_soak", run_stochastic_scenario, validate_stochastic_plan,
     nullptr},
    {"brownout_shedding", run_brownout_scenario, validate_brownout_plan,
     nullptr},
    {"me_backscatter_soak", run_me_scenario, validate_me_plan, "me"},
    {"bioz_tissue_drift", run_bioz_scenario, validate_bioz_plan, nullptr},
};

}  // namespace

std::vector<std::string> campaign_names() {
  std::vector<std::string> names;
  for (const auto& campaign : kCampaigns) names.emplace_back(campaign.name);
  return names;
}

bool is_campaign(const std::string& name) {
  for (const auto& campaign : kCampaigns) {
    if (name == campaign.name) return true;
  }
  return false;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.scenarios < 1 || config.exchanges < 1) {
    throw std::invalid_argument("run_campaign: scenarios and exchanges must be >= 1");
  }
  const NamedCampaign* chosen = nullptr;
  for (const auto& campaign : kCampaigns) {
    if (config.name == campaign.name) chosen = &campaign;
  }
  if (chosen == nullptr) {
    throw std::invalid_argument("run_campaign: unknown campaign '" + config.name + "'");
  }

  // Resolve the LinkPhy backend: a campaign written for a specific
  // physical layer overrides config.link; either way the name must be
  // registered (throws std::invalid_argument with the known names).
  CampaignConfig effective = config;
  if (chosen->backend != nullptr) effective.link = chosen->backend;
  link::nominal_profile(effective.link);

  // Static pre-validation: every scenario's fault plan is checked against
  // the run horizon, magnitude domains, and envelope reachability before
  // any scenario executes (throws std::invalid_argument on a bad plan).
  for (int j = 0; j < effective.scenarios; ++j) chosen->validate(effective, j);

  CampaignResult result;
  result.name = config.name;
  result.scenarios.resize(static_cast<std::size_t>(config.scenarios));

  // One labelled child registry per scenario, forked before the workers
  // start: scenario j records into scoped[j] only, so cohort statistics
  // (and the fingerprint) are independent of the thread count.
  auto& registry = obs::MetricsRegistry::instance();
  std::vector<std::shared_ptr<obs::MetricsRegistry>> scoped;
  scoped.reserve(static_cast<std::size_t>(config.scenarios));
  for (int j = 0; j < config.scenarios; ++j) {
    scoped.push_back(registry.scoped(
        {{"campaign", config.name}, {"scenario", std::to_string(j)}}));
  }

  // Scenario j writes slot j and draws only from streams keyed by
  // (seed, j): bit-identical output for any thread count.
  exec::ThreadPool pool(config.threads);
  exec::ParallelForOptions options;
  options.grain = 1;
  exec::parallel_for(
      pool, 0, static_cast<std::size_t>(config.scenarios),
      [&](std::size_t j) {
        result.scenarios[j] =
            chosen->run(effective, static_cast<int>(j), *scoped[j]);
      },
      options);

  int disturbed = 0;
  for (const auto& s : result.scenarios) {
    result.total_exchanges += s.exchanges;
    result.completed += s.completed;
    result.lost_measurements += s.lost;
    result.retries += s.retries;
    result.restarts += s.restarts;
    result.checkpoints += s.checkpoints;
    disturbed += s.recovered + s.lost;
    result.mean_time_to_recover += s.recover_seconds;
    for (int k = 0; k < kFaultKindCount; ++k) {
      result.faults_injected[k] += s.faults_injected[k];
    }
  }
  int recovered = 0;
  for (const auto& s : result.scenarios) recovered += s.recovered;
  result.recovery_rate =
      disturbed > 0 ? static_cast<double>(recovered) / disturbed : 1.0;
  result.mean_time_to_recover =
      recovered > 0 ? result.mean_time_to_recover / recovered : 0.0;
  result.fingerprint = fingerprint_scenarios(result.scenarios);

  if constexpr (obs::kEnabled) {
    // link.* schema: which physical layer served this campaign, its
    // nominal numbers, and the power queries the scenarios issued
    // (trace_validate --require pins these in CI).
    std::uint64_t power_queries = 0;
    for (const auto& s : result.scenarios) power_queries += s.power_queries;
    const auto& profile = link::nominal_profile(effective.link);
    registry.counter("link.power_queries").add(power_queries);
    LinkBudget probe(effective.link);
    registry.gauge("link." + effective.link + ".p_nominal_w")
        .set(probe.p_nominal);
    registry.gauge("link." + effective.link + ".nominal_rate_bps")
        .set(profile.rate_bps);
    registry.gauge("link." + effective.link + ".cadence_s")
        .set(profile.cadence_s);
    registry.counter("fault.campaign.runs").add();
    registry.gauge("fault.campaign.recovery_rate").set(result.recovery_rate);
    registry.gauge("fault.campaign.lost_measurements")
        .set(static_cast<double>(result.lost_measurements));
    registry.gauge("fault.campaign.mean_time_to_recover_s")
        .set(result.mean_time_to_recover);
    // Fold the per-scenario children into cohort.<campaign>.* gauges
    // (sessions/count/min/max/mean/p50/p95/p99 per metric) while the
    // children are still alive; they expire when `scoped` goes away.
    registry.publish_cohorts("cohort." + config.name);
    auto& sink = obs::TelemetrySink::instance();
    if (sink.is_open()) {
      for (const auto& child : scoped) sink.emit_metrics_snapshot(*child);
      sink.emit_event("fault.campaign", "complete",
                      {{"campaign", obs::json::Value(config.name)},
                       {"recovery_rate", obs::json::Value(result.recovery_rate)},
                       {"lost", obs::json::Value(static_cast<std::uint64_t>(
                                    result.lost_measurements))}});
    }
  }
  return result;
}

}  // namespace ironic::fault
