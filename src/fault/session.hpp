// Resilient session layer on top of comms::Transactor.
//
// The transactor gives one exchange a fixed retry budget; the session
// wraps it with what patch firmware actually needs to survive a fault
// window: per-exchange wall-clock timeouts on a SimClock, bounded
// exponential backoff with deterministic jitter between attempts, an
// EWMA link-quality estimator, and automatic downlink-rate fallback
// down a ladder (the paper's robust low-rate ASK modes) with probation
// before climbing back. Implant-side ImplantDedup keeps side-effecting
// commands exactly-once across retries.
//
// Everything reports through obs: session.retries, session.backoff_ms,
// session.link_quality, session.rate_bps, session.rate_fallbacks,
// session.exchanges, session.failures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/comms/protocol.hpp"
#include "src/fault/schedule.hpp"
#include "src/util/rng.hpp"

namespace ironic::fault {

struct SessionOptions {
  int max_attempts = 16;          // total send attempts per exchange
  double exchange_timeout = 5.0;  // [s] SimClock budget per exchange
  double backoff_initial = 2e-3;  // [s] first retry delay
  double backoff_max = 0.5;       // [s] delay ceiling
  double backoff_factor = 2.0;    // exponential growth per retry
  double jitter = 0.25;           // +/- fraction of the delay, from rng
  // Downlink-rate fallback ladder [bit/s], fastest first. The paper's
  // nominal 100 kbit/s ASK downlink degrades gracefully to robust
  // low-rate modes as the link quality drops.
  std::vector<double> rate_ladder = {100e3, 50e3, 25e3, 12.5e3};
  double quality_alpha = 0.3;       // EWMA smoothing per attempt
  double fallback_threshold = 0.5;  // quality below -> one rung slower
  double recovery_threshold = 0.95; // quality above -> one rung faster
  int min_dwell = 4;                // attempts between rate moves
  int transactor_retries = 0;       // extra in-transactor retries per attempt
};

struct ExchangeOutcome {
  bool ok = false;
  int attempts = 0;        // send attempts consumed
  double elapsed = 0.0;    // [s] SimClock time: airtime + backoff
  double rate = 0.0;       // [bit/s] rate in effect when the exchange ended
  std::optional<comms::Response> response;
};

struct SessionStats {
  int exchanges = 0;
  int failures = 0;          // exchanges abandoned (timeout / attempts)
  int retries = 0;           // attempts beyond the first, across exchanges
  int recovered = 0;         // exchanges that needed >= 1 retry and succeeded
  double backoff_seconds = 0.0;
  double recover_seconds = 0.0;  // elapsed summed over recovered exchanges
  int rate_fallbacks = 0;
  int rate_recoveries = 0;
};

// The session rebuilds its channels whenever the rate moves, so the
// campaign can fold the rate into the physical bit-error model.
using ChannelFactory = std::function<comms::Channel(double bit_rate)>;

class Session {
 public:
  // `clock` must outlive the session; `rng` drives the backoff jitter.
  Session(ChannelFactory downlink, ChannelFactory uplink,
          std::function<comms::Response(const comms::Request&)> implant_handler,
          SimClock* clock, util::Rng rng, SessionOptions options = {});

  // Run one request/response exchange to completion or abandonment,
  // advancing the SimClock through every attempt and backoff.
  ExchangeOutcome exchange(comms::Command command,
                           std::vector<std::uint8_t> payload = {});

  double link_quality() const { return quality_; }
  double current_rate() const;
  const SessionStats& stats() const { return stats_; }
  const comms::TransactorStats& transactor_stats() const { return tstats_; }

 private:
  void advance_clock_through_attempts(std::size_t booked_before);
  void update_quality(bool success);
  void maybe_move_rate();

  ChannelFactory downlink_factory_;
  ChannelFactory uplink_factory_;
  std::function<comms::Response(const comms::Request&)> handler_;
  SimClock* clock_;
  util::Rng rng_;
  SessionOptions options_;

  comms::Transactor transactor_;
  comms::ImplantDedup dedup_;
  comms::TransactorStats tstats_;
  SessionStats stats_;
  double quality_ = 1.0;
  std::size_t rung_ = 0;
  int dwell_ = 0;  // attempts since the last rate move
};

}  // namespace ironic::fault
