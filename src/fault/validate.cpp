#include "src/fault/validate.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ironic::fault {
namespace {

// Physical domain of each kind's magnitude (see FaultKind comments in
// schedule.hpp). Geometry kinds are metres on an implant-scale link, so
// anything past ~1 m separation (0.5 m of tissue) is a unit mistake,
// not a pessimistic scenario.
const char* magnitude_problem(FaultKind kind, double m) {
  if (!std::isfinite(m)) return "magnitude must be finite";
  switch (kind) {
    case FaultKind::kCouplingStep:
      if (m < 0.0 || m > 1.0) return "coil separation must be in [0, 1] m";
      break;
    case FaultKind::kMisalignment:
      if (m < 0.0 || m > 1.0) return "lateral offset must be in [0, 1] m";
      break;
    case FaultKind::kTissueDrift:
      if (m < 0.0 || m > 0.5) return "tissue thickness must be in [0, 0.5] m";
      break;
    case FaultKind::kBitFlip:
      if (m < 0.0 || m > 1.0) return "flip probability must be in [0, 1]";
      break;
    case FaultKind::kBurstError:
      if (m < 0.0) return "burst length must be >= 0 bits";
      break;
    case FaultKind::kOvervoltage:
      if (m <= 1.0 || m > 10.0) {
        return "drive scale must be in (1, 10] (values <= 1 are not an "
               "overvoltage)";
      }
      break;
    case FaultKind::kLdoDropout:
      if (m <= 0.0 || m >= 1.0) {
        return "rail scale must be in (0, 1) (values >= 1 are not a sag)";
      }
      break;
    case FaultKind::kBrownout:
      if (m <= 0.0 || m > 1.0) return "charge fraction must be in (0, 1]";
      break;
  }
  return nullptr;
}

}  // namespace

std::string PlanReport::to_text() const {
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << issue.code << " (event " << issue.event << "): " << issue.message
       << "\n";
  }
  return os.str();
}

PlanReport validate_schedule(const FaultSchedule& schedule,
                             const PlanContext& context) {
  PlanReport report;
  const auto& events = schedule.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string what = std::string(fault_kind_name(e.kind));

    if (!std::isfinite(e.start) || e.start < 0.0 ||
        !std::isfinite(e.duration)) {
      report.issues.push_back(
          {"plan.bad-window", i,
           what + " window [start " + std::to_string(e.start) + ", duration " +
               std::to_string(e.duration) + "] is not a usable time window"});
      continue;  // window garbage makes the horizon check meaningless
    }
    if (context.horizon > 0.0 && e.start >= context.horizon) {
      report.issues.push_back(
          {"plan.after-horizon", i,
           what + " starts at " + std::to_string(e.start) +
               " s, at or past the scenario horizon of " +
               std::to_string(context.horizon) + " s -- it would never fire"});
    }
    if (const char* problem = magnitude_problem(e.kind, e.magnitude)) {
      report.issues.push_back(
          {"plan.bad-magnitude", i,
           what + " magnitude " + std::to_string(e.magnitude) + ": " + problem});
      continue;  // reachability needs a sane magnitude first
    }
    if (e.kind == FaultKind::kOvervoltage && context.envelope_vmax > 0.0 &&
        context.overvoltage_limit > 0.0 &&
        e.magnitude * context.envelope_vmax <= context.overvoltage_limit) {
      report.issues.push_back(
          {"plan.overvoltage-unreachable", i,
           "scale " + std::to_string(e.magnitude) + " x envelope peak " +
               std::to_string(context.envelope_vmax) +
               " V stays at or below the " +
               std::to_string(context.overvoltage_limit) +
               " V rail limit -- the fault cannot be observed"});
    }
  }
  return report;
}

void require_valid_schedule(const FaultSchedule& schedule,
                            const PlanContext& context,
                            const std::string& label) {
  const PlanReport report = validate_schedule(schedule, context);
  if (!report.ok()) {
    throw std::invalid_argument("fault plan '" + label + "' rejected:\n" +
                                report.to_text());
  }
}

}  // namespace ironic::fault
