// Deterministic fault schedules for resilience campaigns.
//
// A FaultSchedule is a timeline of FaultEvents — coil separation steps,
// tissue drift, channel bit errors, rail transients, battery brownouts —
// that the FaultInjector consults against a SimClock. Schedules are
// either scripted (the campaign names each event) or stochastic (drawn
// once, up front, from a seeded util::Rng stream, so a soak run is
// bit-identical for any thread count per the PR-3 determinism contract).
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/rng.hpp"

namespace ironic::fault {

// Simulated wall clock for a campaign scenario. All latency the session
// layer books (airtime, backoff) advances this clock, and the injector
// evaluates the schedule against it — no real time anywhere.
class SimClock {
 public:
  double now() const { return t_; }
  void advance(double dt);  // throws std::invalid_argument on dt < 0

 private:
  double t_ = 0.0;
};

enum class FaultKind : int {
  kCouplingStep = 0,  // magnitude: new coil separation [m]
  kMisalignment,      // magnitude: lateral coil offset [m]
  kTissueDrift,       // magnitude: tissue slab thickness [m] (0 = air)
  kBitFlip,           // magnitude: per-bit flip probability
  kBurstError,        // magnitude: contiguous bits inverted per frame
  kOvervoltage,       // magnitude: drive-amplitude scale (> 1)
  kLdoDropout,        // magnitude: regulator input-rail scale (< 1)
  kBrownout,          // magnitude: battery charge fraction lost at start
};
inline constexpr int kFaultKindCount = 8;

// Stable short name, used for metric keys ("fault.injected.<name>") and
// report rows.
const char* fault_kind_name(FaultKind kind);

// Which link direction a comms fault (kBitFlip/kBurstError) corrupts.
enum class LinkDirection : int { kDownlink = 0, kUplink = 1, kBoth = 2 };

struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  double start = 0.0;      // [s] on the scenario SimClock
  double duration = -1.0;  // [s]; <= 0 means permanent from `start`
  double magnitude = 0.0;  // kind-specific, see FaultKind
  LinkDirection direction = LinkDirection::kBoth;  // comms kinds only

  bool active_at(double t) const {
    return t >= start && (duration <= 0.0 || t < start + duration);
  }
  bool applies_to(LinkDirection link) const {
    return direction == LinkDirection::kBoth || direction == link;
  }
};

// Knobs for the stochastic generator. Event counts are drawn per kind so
// disabling a kind is just a zero entry.
struct StochasticScheduleConfig {
  double horizon = 10.0;  // [s] events start uniformly in [0, horizon)
  // Mean number of events of each kind across the horizon (Poisson).
  double events_per_kind[kFaultKindCount] = {0.5, 0.5, 0.5, 1.5,
                                             1.5, 0.5, 0.5, 0.5};
  double mean_duration = 0.5;  // [s] exponential; step kinds stay permanent
};

class FaultSchedule {
 public:
  void add(const FaultEvent& event);
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // The event of `kind` governing time `t` (latest start wins when
  // windows overlap), or nullptr when none is active.
  const FaultEvent* active(FaultKind kind, double t,
                           LinkDirection link = LinkDirection::kBoth) const;

  // All events of `kind` whose start lies in (t0, t1] — the edge-trigger
  // query used for instantaneous kinds (kBrownout).
  std::vector<const FaultEvent*> started_between(FaultKind kind, double t0,
                                                 double t1) const;

  // Draw a schedule from `rng`. Same rng state + config -> identical
  // schedule, on any machine and thread count.
  static FaultSchedule stochastic(util::Rng& rng,
                                  const StochasticScheduleConfig& config = {});

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace ironic::fault
