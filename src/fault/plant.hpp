// The shared end-to-end "patient plant": the tuned inductive link with
// injector-perturbed geometry, the physical BER model the session rate
// ladder plays against, and the rectifier transient plant whose analog
// state persists between measurements through spice checkpoints.
//
// Extracted from the campaign runner so the fleet service can run the
// same pipeline per patient session. The plant adds the fleet's scaling
// lever: `fork_from` adopts a shared charged-up TransientCheckpoint as
// the committed operating point *without copying it* — thousands of
// sessions reference one immutable blob, and each plant detaches onto
// its own private checkpoint the first time it commits a segment
// (copy-on-write). `capture_charged_checkpoint` produces that shared
// blob by running the ~270 us charge-up transient once.
#pragma once

#include <cstdint>
#include <memory>

#include "src/fault/injector.hpp"
#include "src/fault/schedule.hpp"
#include "src/magnetics/link.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"

namespace ironic::fault {

// Shared operating constants (the paper's nominal link numbers).
inline constexpr double kNominalRate = 100e3;  // ASK downlink [bit/s]
inline constexpr double kCadence = 0.25;       // [s] between measurements
inline constexpr double kLoadOhms = 150.0;     // rectifier input impedance scale
inline constexpr double kNominalDrive = 3.5;   // rectifier input amplitude [V]

pm::RectifierOptions fast_rect_options();

// 12-bit ADC code for a rectifier output voltage clamped to [0, 4] V.
std::uint16_t adc_code(double vo);

// The tuned link with injector-perturbed geometry; power feeds the BER
// model and the implant drive amplitude.
struct LinkBudget {
  magnetics::InductiveLink link;
  double drive = 0.0;
  double p_nominal = 0.0;

  LinkBudget();
  double power_now(const FaultInjector& injector);
};

// Implant drive amplitude: the patch partially compensates a weakened
// link (floor at 0.6 of nominal — it cannot boost indefinitely), and an
// overvoltage fault scales the drive past the clamp threshold.
double drive_amplitude(double power, double p_nominal,
                       const FaultInjector& injector);

// Physical BER from the link budget: snr scales with delivered power and
// inversely with bit rate (energy per bit), so the session's rate ladder
// buys back margin the coupling fault took away.
double bit_error_rate_for(double power, double sensitivity, double rate);

// Tally the continuously-active fault kinds once per executed
// measurement (the comms kinds tally per corrupted frame inside the
// injector's channel wrapper).
void tally_active(FaultInjector& injector, const FaultSchedule& schedule,
                  double t);

// Rectifier transient segments spliced at committed checkpoints: the
// implant's analog state persists between measurements, and a drive
// change mid-flight (a fault landing inside a segment) costs a discarded
// half segment plus a restart from the last committed checkpoint.
struct RectifierPlant {
  double segment_length = 10e-6;
  int restarts = 0;
  int checkpoints = 0;
  // When set, the static-analysis passes run over each fresh segment
  // circuit and install the solver/dt hints before the transient.
  bool analysis_hints = false;
  spice::analysis::AnalysisManager analyzer;

  static std::unique_ptr<spice::Circuit> build(double amplitude);

  // Adopt `base` as the committed operating point without copying the
  // blob. `base_amplitude` is the drive the blob was captured at, so the
  // first measurement at a different drive pays the usual doomed-segment
  // restart. The shared checkpoint is only ever read through a const
  // pointer; the plant detaches onto its own private checkpoint when it
  // commits its first segment, so mutating this plant can never perturb
  // sibling plants forked from the same blob.
  void fork_from(std::shared_ptr<const spice::TransientCheckpoint> base,
                 double base_amplitude);
  // True until the first committed segment replaces the shared blob.
  bool shares_base() const { return base_ != nullptr; }

  double measure(double amplitude);

  // The committed operating point (shared or private), nullptr before
  // the first segment when the plant was not forked.
  const spice::TransientCheckpoint* committed() const;

  spice::TransientResult run_segment(double amplitude, double length,
                                     spice::TransientCheckpoint* capture);

 private:
  std::shared_ptr<const spice::TransientCheckpoint> base_;  // forked, immutable
  spice::TransientCheckpoint owned_;  // private once a segment commits
  double committed_amplitude_ = -1.0;
};

// One charge-up transient at a fixed drive, checkpointed at the final
// accepted point — the operating point every fleet session forks from.
struct ChargeUpSpec {
  double amplitude = kNominalDrive;
  double duration = 270e-6;  // [s] the paper's charge-up time scale
  double dt_max = 10e-9;     // matches the measurement segments
  int record_every = 64;     // charge-up trace decimation (state unaffected)

  bool operator==(const ChargeUpSpec&) const = default;
};

spice::TransientCheckpoint capture_charged_checkpoint(
    const ChargeUpSpec& spec = {}, spice::TransientStats* stats = nullptr);

}  // namespace ironic::fault
