// The shared end-to-end "patient plant": the LinkPhy backend with
// injector-perturbed geometry, the physical BER model the session rate
// ladder plays against, and the rectifier transient plant whose analog
// state persists between measurements through spice checkpoints.
//
// Extracted from the campaign runner so the fleet service can run the
// same pipeline per patient session. The plant adds the fleet's scaling
// lever: `fork_from` adopts a shared charged-up TransientCheckpoint as
// the committed operating point *without copying it* — thousands of
// sessions reference one immutable blob, and each plant detaches onto
// its own private checkpoint the first time it commits a segment
// (copy-on-write). `capture_charged_checkpoint` produces that shared
// blob by running the ~270 us charge-up transient once.
//
// Since the LinkPhy refactor the physical layer is pluggable: LinkBudget
// dispatches through a link::LinkPhy backend ("inductive" reproduces the
// pre-refactor pipeline bit-for-bit; "me" swaps in the magnetoelectric
// transducer with PWM backscatter), and the nominal operating point
// lives in the backend's link::NominalProfile instead of free constants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/fault/injector.hpp"
#include "src/fault/schedule.hpp"
#include "src/link/inductive.hpp"
#include "src/link/phy.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"

namespace ironic::fault {

// Deprecated aliases for the former hard-coded nominal link constants;
// they are the *inductive* backend's numbers. New code should read
// LinkBudget::nominal() (or link::nominal_profile(name)) so multi-
// backend call sites can never mix one backend's BER model with
// another's operating point.
inline constexpr double kNominalRate =
    link::kInductiveNominal.rate_bps;  // ASK downlink [bit/s]
inline constexpr double kCadence =
    link::kInductiveNominal.cadence_s;  // [s] between measurements
inline constexpr double kLoadOhms =
    link::kInductiveNominal.load_ohms;  // rectifier input impedance scale
inline constexpr double kNominalDrive =
    link::kInductiveNominal.drive_v;  // rectifier input amplitude [V]

// Which sensing front end a scenario/session drives per measurement:
// the spice rectifier + lactate potentiostat plant, its behavioural
// stand-in for long soaks, or the Fricke bio-impedance ladder.
enum class Workload { kLactateSpice, kLactateBehavioural, kBioZ };

const char* workload_name(Workload workload);
// Parses "lactate" / "lactate-behavioural" / "bioz"; false on others.
bool parse_workload(const std::string& text, Workload& out);

pm::RectifierOptions fast_rect_options();

// 12-bit ADC code for a rectifier output voltage clamped to [0, 4] V.
std::uint16_t adc_code(double vo);

// The link budget behind a session: a LinkPhy backend plus the
// injector-perturbed geometry; power feeds the BER model and the
// implant drive amplitude.
struct LinkBudget {
  std::unique_ptr<link::LinkPhy> phy;
  double p_nominal = 0.0;
  // Power queries served (telemetry only; never fed to fingerprints).
  std::uint64_t power_queries = 0;

  // Backend #1, the paper's inductive ASK/LSK chain.
  LinkBudget();
  // Any registered backend by name; throws std::invalid_argument on an
  // unknown one (see link::backend_names()).
  explicit LinkBudget(const std::string& backend);
  explicit LinkBudget(std::unique_ptr<link::LinkPhy> backend);

  const link::NominalProfile& nominal() const { return phy->nominal(); }

  // Delivered power under the injector's current geometry faults [W].
  double power_now(const FaultInjector& injector);

  // Backend compensation law x the injected overvoltage drive scale.
  double drive_amplitude(double power, const FaultInjector& injector) const;

  double bit_error_rate(double power, double sensitivity, double rate) const;
};

// Deprecated free-function forms of the inductive backend's laws (the
// pre-LinkPhy API); prefer the LinkBudget members, which dispatch to
// the session's actual backend.
double drive_amplitude(double power, double p_nominal,
                       const FaultInjector& injector);
double bit_error_rate_for(double power, double sensitivity, double rate);

// Tally the continuously-active fault kinds once per executed
// measurement (the comms kinds tally per corrupted frame inside the
// injector's channel wrapper).
void tally_active(FaultInjector& injector, const FaultSchedule& schedule,
                  double t);

// Rectifier transient segments spliced at committed checkpoints: the
// implant's analog state persists between measurements, and a drive
// change mid-flight (a fault landing inside a segment) costs a discarded
// half segment plus a restart from the last committed checkpoint.
struct RectifierPlant {
  double segment_length = 10e-6;
  // Source carrier [Hz]; set from the backend's NominalProfile (5 MHz
  // inductive, 1 MHz magnetoelectric).
  double carrier_hz = link::kInductiveNominal.carrier_hz;
  int restarts = 0;
  int checkpoints = 0;
  // When set, the static-analysis passes run over each fresh segment
  // circuit and install the solver/dt hints before the transient.
  bool analysis_hints = false;
  spice::analysis::AnalysisManager analyzer;

  static std::unique_ptr<spice::Circuit> build(
      double amplitude, double carrier_hz = link::kInductiveNominal.carrier_hz);

  // Adopt `base` as the committed operating point without copying the
  // blob. `base_amplitude` is the drive the blob was captured at, so the
  // first measurement at a different drive pays the usual doomed-segment
  // restart. The shared checkpoint is only ever read through a const
  // pointer; the plant detaches onto its own private checkpoint when it
  // commits its first segment, so mutating this plant can never perturb
  // sibling plants forked from the same blob.
  void fork_from(std::shared_ptr<const spice::TransientCheckpoint> base,
                 double base_amplitude);
  // True until the first committed segment replaces the shared blob.
  bool shares_base() const { return base_ != nullptr; }

  double measure(double amplitude);

  // The committed operating point (shared or private), nullptr before
  // the first segment when the plant was not forked.
  const spice::TransientCheckpoint* committed() const;

  spice::TransientResult run_segment(double amplitude, double length,
                                     spice::TransientCheckpoint* capture);

 private:
  std::shared_ptr<const spice::TransientCheckpoint> base_;  // forked, immutable
  spice::TransientCheckpoint owned_;  // private once a segment commits
  double committed_amplitude_ = -1.0;
};

// One charge-up transient at a fixed drive, checkpointed at the final
// accepted point — the operating point every fleet session forks from.
// The CheckpointCache dedupes by value equality, so two cohorts on
// different backends (different amplitude/carrier) get distinct blobs
// while same-backend cohorts share one.
struct ChargeUpSpec {
  double amplitude = kNominalDrive;
  double carrier_hz = link::kInductiveNominal.carrier_hz;
  double duration = 270e-6;  // [s] the paper's charge-up time scale
  double dt_max = 10e-9;     // matches the measurement segments
  int record_every = 64;     // charge-up trace decimation (state unaffected)

  bool operator==(const ChargeUpSpec&) const = default;
};

spice::TransientCheckpoint capture_charged_checkpoint(
    const ChargeUpSpec& spec = {}, spice::TransientStats* stats = nullptr);

}  // namespace ironic::fault
