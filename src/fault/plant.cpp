#include "src/fault/plant.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"

namespace ironic::fault {

const char* workload_name(Workload workload) {
  switch (workload) {
    case Workload::kLactateSpice: return "lactate";
    case Workload::kLactateBehavioural: return "lactate-behavioural";
    case Workload::kBioZ: return "bioz";
  }
  return "?";
}

bool parse_workload(const std::string& text, Workload& out) {
  if (text == "lactate") {
    out = Workload::kLactateSpice;
  } else if (text == "lactate-behavioural") {
    out = Workload::kLactateBehavioural;
  } else if (text == "bioz") {
    out = Workload::kBioZ;
  } else {
    return false;
  }
  return true;
}

pm::RectifierOptions fast_rect_options() {
  pm::RectifierOptions opt;
  opt.storage_capacitance = 10e-9;  // small Co keeps segments quick
  opt.diode_is = 1e-16;
  return opt;
}

std::uint16_t adc_code(double vo) {
  const double clamped = std::clamp(vo, 0.0, 4.0);
  return static_cast<std::uint16_t>(std::lround(clamped / 4.0 * 4095.0));
}

LinkBudget::LinkBudget() : LinkBudget(link::make_backend("inductive")) {}

LinkBudget::LinkBudget(const std::string& backend)
    : LinkBudget(link::make_backend(backend)) {}

LinkBudget::LinkBudget(std::unique_ptr<link::LinkPhy> backend)
    : phy(std::move(backend)) {
  p_nominal = phy->nominal_power();
}

double LinkBudget::power_now(const FaultInjector& injector) {
  link::LinkCondition condition = phy->nominal_condition();
  condition.distance = injector.distance(condition.distance);
  condition.lateral_offset = injector.lateral_offset(condition.lateral_offset);
  condition.tissue_thickness = injector.tissue_thickness();
  ++power_queries;
  return phy->power_delivered(condition);
}

double LinkBudget::drive_amplitude(double power,
                                   const FaultInjector& injector) const {
  return phy->drive_amplitude(power) * injector.drive_scale();
}

double LinkBudget::bit_error_rate(double power, double sensitivity,
                                  double rate) const {
  return phy->bit_error_rate(power, sensitivity, rate);
}

double drive_amplitude(double power, double p_nominal,
                       const FaultInjector& injector) {
  const double compensation =
      std::clamp(std::sqrt(std::max(0.0, power) / p_nominal), 0.6, 1.0);
  return kNominalDrive * compensation * injector.drive_scale();
}

double bit_error_rate_for(double power, double sensitivity, double rate) {
  const double snr =
      std::max(0.0, power / sensitivity) * (kNominalRate / rate);
  return 0.5 * std::erfc(std::sqrt(snr));
}

void tally_active(FaultInjector& injector, const FaultSchedule& schedule,
                  double t) {
  for (const auto kind :
       {FaultKind::kCouplingStep, FaultKind::kMisalignment,
        FaultKind::kTissueDrift, FaultKind::kOvervoltage,
        FaultKind::kLdoDropout}) {
    if (schedule.active(kind, t) != nullptr) injector.note_applied(kind);
  }
}

std::unique_ptr<spice::Circuit> RectifierPlant::build(double amplitude,
                                                      double carrier_hz) {
  auto ckt = std::make_unique<spice::Circuit>();
  const auto src = ckt->node("src");
  const auto vi = ckt->node("vi");
  ckt->add<spice::VoltageSource>("Vs", src, spice::kGround,
                                 spice::Waveform::sine(amplitude, carrier_hz));
  ckt->add<spice::Resistor>("Rs", src, vi, 50.0);
  const auto rect =
      pm::build_rectifier(*ckt, "r", vi, spice::Waveform::dc(0.0),
                          spice::Waveform::dc(1.8), fast_rect_options());
  // Light enough that the settled Vo clears the LDO's 2.1 V input
  // floor at the nominal drive; violations then come from faults.
  ckt->add<spice::Resistor>("Rl", rect.output, spice::kGround, 2.2e3);
  return ckt;
}

void RectifierPlant::fork_from(
    std::shared_ptr<const spice::TransientCheckpoint> base,
    double base_amplitude) {
  base_ = std::move(base);
  owned_ = spice::TransientCheckpoint{};
  committed_amplitude_ = base_amplitude;
}

const spice::TransientCheckpoint* RectifierPlant::committed() const {
  if (base_ != nullptr && base_->valid()) return base_.get();
  if (owned_.valid()) return &owned_;
  return nullptr;
}

spice::TransientResult RectifierPlant::run_segment(
    double amplitude, double length, spice::TransientCheckpoint* capture) {
  // A fresh circuit every segment: resume must carry ALL state through
  // the checkpoint blob, never through device object identity.
  auto ckt = build(amplitude, carrier_hz);
  if (analysis_hints) analyzer.apply_hints(*ckt);
  spice::TransientOptions opts;
  const spice::TransientCheckpoint* from = committed();
  const double t0 = from != nullptr ? from->time : 0.0;
  opts.t_stop = t0 + length;
  opts.dt_max = 10e-9;
  opts.record_every = 8;
  opts.record_signals = {"v(r.vo)"};
  opts.checkpoint = capture;
  if (from != nullptr) opts.resume_from = from;
  return spice::run_transient(*ckt, opts);
}

double RectifierPlant::measure(double amplitude) {
  if (committed() != nullptr && committed_amplitude_ >= 0.0 &&
      amplitude != committed_amplitude_) {
    // The fault hit while a segment at the old drive was in flight:
    // that half segment is wasted work, thrown away with its scratch
    // checkpoint; the measurement restarts from the committed state.
    spice::TransientCheckpoint doomed;
    run_segment(committed_amplitude_, segment_length / 2.0, &doomed);
    ++restarts;
  }
  spice::TransientCheckpoint scratch;
  const auto res = run_segment(amplitude, segment_length, &scratch);
  const spice::TransientCheckpoint* from = committed();
  const double t0 = from != nullptr ? from->time : 0.0;
  // Average the settled second half of the segment (the first half of
  // the very first segment is still charging Co).
  const double vo = res.mean_between("v(r.vo)", t0 + segment_length / 2.0,
                                     t0 + segment_length);
  // Copy-on-write commit: the plant's state is now its own private
  // checkpoint, and the shared base (if any) is released untouched.
  owned_ = std::move(scratch);
  base_.reset();
  committed_amplitude_ = amplitude;
  ++checkpoints;
  return vo;
}

spice::TransientCheckpoint capture_charged_checkpoint(
    const ChargeUpSpec& spec, spice::TransientStats* stats) {
  auto ckt = RectifierPlant::build(spec.amplitude, spec.carrier_hz);
  spice::TransientOptions opts;
  opts.t_stop = spec.duration;
  opts.dt_max = spec.dt_max;
  opts.record_every = spec.record_every;
  opts.record_signals = {"v(r.vo)"};
  spice::TransientCheckpoint checkpoint;
  opts.checkpoint = &checkpoint;
  spice::run_transient(*ckt, opts, stats);
  return checkpoint;
}

}  // namespace ironic::fault
