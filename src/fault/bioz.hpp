// Bio-impedance sensing workload (arXiv 1507.03388): the implant
// energizes a pair of tissue electrodes and digitizes the voltage a few
// segments into the distributed Fricke-Morse ladder — the third
// workload beside the lactate potentiostat, sharing the session/fault/
// fleet machinery through the same per-measurement handler shape.
//
// The circuit is the programmatic twin of examples/netlists/
// tissue_ladder.cir (60 cascaded FRICKE cells, ~122 MNA unknowns, the
// canonical sparse-solver workload); tests/link_test.cpp pins the two
// against each other. Tissue-drift faults scale the ionic resistances
// (Re/Ri) — hydration and oedema move the electrolyte resistivity while
// the membrane capacitance and electrode access resistance stay put —
// so a kTissueDrift event shifts the measured code instead of (as on
// the inductive power link) collapsing the coupling.
//
// Unlike RectifierPlant there is no analog state carried between
// measurements: each sample is its own short stimulation transient
// (the electrodes are re-energized per measurement), so fleet sessions
// on this workload skip the charge-up checkpoint entirely.
#pragma once

#include <memory>
#include <optional>

#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"

namespace ironic::fault {

// The tissue-ladder stimulation circuit: `amplitude` is the pulse high
// level (the implant's compensated drive rail), `tissue_scale`
// multiplies every segment's Re/Ri (1.0 = the shipped netlist's
// sirloin numbers), `segments` cascaded cells.
std::unique_ptr<spice::Circuit> build_tissue_ladder(double amplitude,
                                                    double tissue_scale,
                                                    int segments = 60);

struct BioZPlant {
  int segments = 60;
  // Voltage tap: v(t<sense_tap>), a few cells past the near electrode —
  // deep enough that tissue drift moves the divider, shallow enough
  // that the level stays in the ADC's [0, 4] V window.
  int sense_tap = 5;
  int measurements = 0;
  // When set, the static-analysis passes run over each measurement
  // circuit and install the solver/dt hints before the transient.
  bool analysis_hints = false;
  spice::analysis::AnalysisManager analyzer;

  // One measurement: a 20 us stimulation pulse into the ladder, the
  // sense voltage averaged over the settled back half of the pulse.
  // Deterministic: pure function of (amplitude, tissue_scale).
  double measure(double amplitude, double tissue_scale);
};

// Maps an injected tissue-thickness fault onto the ladder's Re/Ri
// scale: the 10 mm baseline slab is scale 1.0, clamped to [0.5, 3.0]
// (an electrode path, not an open circuit). No fault -> 1.0.
double bioz_tissue_scale(const std::optional<double>& thickness);

}  // namespace ironic::fault
