#include "src/fault/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/telemetry.hpp"

namespace ironic::fault {
namespace {

// Registry handles for the session hot path, resolved once (the
// TransactorMetrics pattern from comms/protocol.cpp).
struct SessionMetrics {
  obs::Counter& exchanges;
  obs::Counter& retries;
  obs::Counter& failures;
  obs::Counter& rate_fallbacks;
  obs::Counter& rate_recoveries;
  obs::Gauge& link_quality;
  obs::Gauge& rate_bps;
  obs::Histogram& backoff_ms;

  static SessionMetrics& get() {
    static SessionMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return SessionMetrics{
          r.counter("session.exchanges"),
          r.counter("session.retries"),
          r.counter("session.failures"),
          r.counter("session.rate_fallbacks"),
          r.counter("session.rate_recoveries"),
          r.gauge("session.link_quality"),
          r.gauge("session.rate_bps"),
          r.histogram("session.backoff_ms",
                      {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}),
      };
    }();
    return m;
  }
};

// Stream a session state transition to the telemetry sink when one is
// open. Pure observation: never blocks and never perturbs the
// simulation's RNG or clock, so campaign fingerprints are identical
// with telemetry on or off.
void emit_session_event(const char* event, double quality, double rate_bps) {
  auto& sink = obs::TelemetrySink::instance();
  if (!sink.is_open()) return;
  obs::json::Value::Object fields;
  fields["quality"] = quality;
  fields["rate_bps"] = rate_bps;
  sink.emit_event("fault.session", event, std::move(fields));
}

}  // namespace

Session::Session(ChannelFactory downlink, ChannelFactory uplink,
                 std::function<comms::Response(const comms::Request&)> implant_handler,
                 SimClock* clock, util::Rng rng, SessionOptions options)
    : downlink_factory_(std::move(downlink)),
      uplink_factory_(std::move(uplink)),
      handler_(std::move(implant_handler)),
      clock_(clock),
      rng_(rng),
      options_(std::move(options)),
      transactor_(options_.transactor_retries) {
  if (clock_ == nullptr) throw std::invalid_argument("Session: clock required");
  if (!downlink_factory_ || !uplink_factory_ || !handler_) {
    throw std::invalid_argument("Session: channel factories and handler required");
  }
  if (options_.rate_ladder.empty() || options_.max_attempts < 1) {
    throw std::invalid_argument("Session: need a rate ladder and >= 1 attempt");
  }
}

double Session::current_rate() const { return options_.rate_ladder[rung_]; }

void Session::advance_clock_through_attempts(std::size_t booked_before) {
  for (std::size_t i = booked_before; i < tstats_.attempt_seconds.size(); ++i) {
    clock_->advance(tstats_.attempt_seconds[i]);
  }
}

void Session::update_quality(bool success) {
  quality_ = (1.0 - options_.quality_alpha) * quality_ +
             options_.quality_alpha * (success ? 1.0 : 0.0);
  ++dwell_;
  if constexpr (obs::kEnabled) SessionMetrics::get().link_quality.set(quality_);
}

void Session::maybe_move_rate() {
  if (dwell_ < options_.min_dwell) return;
  bool moved = false;
  if (quality_ < options_.fallback_threshold &&
      rung_ + 1 < options_.rate_ladder.size()) {
    ++rung_;
    ++stats_.rate_fallbacks;
    if constexpr (obs::kEnabled) {
      SessionMetrics::get().rate_fallbacks.add();
      emit_session_event("rate_fallback", quality_,
                         options_.rate_ladder[rung_]);
    }
    moved = true;
  } else if (quality_ > options_.recovery_threshold && rung_ > 0) {
    --rung_;
    ++stats_.rate_recoveries;
    if constexpr (obs::kEnabled) {
      SessionMetrics::get().rate_recoveries.add();
      emit_session_event("rate_recovery", quality_,
                         options_.rate_ladder[rung_]);
    }
    moved = true;
  }
  if (moved) {
    dwell_ = 0;
    // Probation: the estimator restarts between the thresholds so the
    // new rate must prove itself before the next move either way.
    quality_ = 0.75;
    if constexpr (obs::kEnabled) {
      SessionMetrics::get().rate_bps.set(current_rate());
    }
  }
}

ExchangeOutcome Session::exchange(comms::Command command,
                                  std::vector<std::uint8_t> payload) {
  PROF_ZONE("comms.exchange");
  ++stats_.exchanges;
  if constexpr (obs::kEnabled) SessionMetrics::get().exchanges.add();

  comms::Request request;
  request.sequence = transactor_.next_sequence();
  request.command = command;
  request.payload = std::move(payload);

  const auto deduped_handler = [this](const comms::Request& r) {
    return dedup_.handle(r, handler_, &tstats_);
  };

  const double t_start = clock_->now();
  ExchangeOutcome outcome;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    transactor_.set_bit_rate(current_rate());
    const comms::Channel down = downlink_factory_(current_rate());
    const comms::Channel up = uplink_factory_(current_rate());
    const std::size_t booked = tstats_.attempt_seconds.size();
    auto response = transactor_.execute(request, down, up, deduped_handler,
                                        &tstats_);
    advance_clock_through_attempts(booked);
    ++outcome.attempts;
    if (attempt > 0) {
      ++stats_.retries;
      if constexpr (obs::kEnabled) SessionMetrics::get().retries.add();
    }
    const bool ok = response.has_value();
    update_quality(ok);
    maybe_move_rate();
    if (ok) {
      outcome.ok = true;
      outcome.response = std::move(response);
      break;
    }
    if (clock_->now() - t_start >= options_.exchange_timeout) break;
    if (attempt + 1 < options_.max_attempts) {
      double delay = options_.backoff_initial *
                     std::pow(options_.backoff_factor, attempt);
      delay = std::min(delay, options_.backoff_max);
      delay *= std::max(0.0, 1.0 + options_.jitter * rng_.uniform(-1.0, 1.0));
      clock_->advance(delay);
      stats_.backoff_seconds += delay;
      if constexpr (obs::kEnabled) {
        SessionMetrics::get().backoff_ms.observe(delay * 1e3);
      }
    }
  }
  outcome.elapsed = clock_->now() - t_start;
  outcome.rate = current_rate();
  if (!outcome.ok) {
    ++stats_.failures;
    if constexpr (obs::kEnabled) {
      SessionMetrics::get().failures.add();
      emit_session_event("exchange_failed", quality_, current_rate());
    }
  } else if (outcome.attempts > 1) {
    ++stats_.recovered;
    stats_.recover_seconds += outcome.elapsed;
  }
  return outcome;
}

}  // namespace ironic::fault
