// Static pre-validation of fault-campaign plans (DESIGN.md §13).
//
// A FaultSchedule is data, so a bad plan — an overvoltage scale the
// plant's operating envelope can never realise, a dip landing after the
// scenario ends, a magnitude outside its kind's physical domain — is
// detectable before any transient runs. run_campaign() validates every
// scenario's schedule up front and rejects the whole campaign with the
// issue list, so fault_runner fails at load instead of soaking for
// minutes and silently injecting nothing.
//
// Issue codes (stable ids, mirroring the spice diagnostic catalog):
//   plan.bad-window               start/duration not a usable time window
//   plan.after-horizon            event starts at or past the run horizon
//   plan.bad-magnitude            magnitude outside the FaultKind's domain
//   plan.overvoltage-unreachable  scale * envelope peak never clears the
//                                 rail limit, so the fault cannot bite
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/fault/schedule.hpp"

namespace ironic::fault {

// Static facts about the run a schedule will be injected into. Zero
// disables the corresponding check (a context-free validation still
// enforces windows and magnitude domains).
struct PlanContext {
  // Scenario length on the SimClock [s]; events must start inside it.
  double horizon = 0.0;
  // Peak |node voltage| from the plant's static operating envelope [V]
  // (spice::analysis interval pass at nominal drive).
  double envelope_vmax = 0.0;
  // Rail level an overvoltage-scaled drive must be able to exceed for
  // the fault to be observable [V] (e.g. the LDO input floor).
  double overvoltage_limit = 0.0;
};

struct PlanIssue {
  std::string code;       // stable id from the catalog above
  std::size_t event = 0;  // index into FaultSchedule::events()
  std::string message;
};

struct PlanReport {
  std::vector<PlanIssue> issues;
  bool ok() const { return issues.empty(); }
  std::string to_text() const;
};

PlanReport validate_schedule(const FaultSchedule& schedule,
                             const PlanContext& context = {});

// Throws std::invalid_argument carrying the report text when the
// schedule has any issue. `label` names the campaign/scenario in the
// message.
void require_valid_schedule(const FaultSchedule& schedule,
                            const PlanContext& context = {},
                            const std::string& label = "schedule");

}  // namespace ironic::fault
