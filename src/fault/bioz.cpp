#include "src/fault/bioz.hpp"

#include <algorithm>
#include <string>

#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"

namespace ironic::fault {

std::unique_ptr<spice::Circuit> build_tissue_ladder(double amplitude,
                                                    double tissue_scale,
                                                    int segments) {
  // Mirrors examples/netlists/tissue_ladder.cir: per segment a 47 ohm
  // access resistance into a Fricke cell (Re 820 shunted by Ri 390 +
  // Cm 33n), terminated in 1 kohm, driven by the biphasic-style pulse.
  auto ckt = std::make_unique<spice::Circuit>();
  const auto in = ckt->node("in");
  ckt->add<spice::VoltageSource>(
      "V1", in, spice::kGround,
      spice::Waveform::pulse(0.0, amplitude, 1e-6, 100e-9, 100e-9, 20e-6,
                             50e-6));
  auto prev = in;
  for (int s = 1; s <= segments; ++s) {
    const std::string tag = std::to_string(s);
    const auto t = ckt->node("t" + tag);
    const auto m = ckt->node("m" + tag);
    ckt->add<spice::Resistor>("RS" + tag, prev, t, 47.0);
    ckt->add<spice::Resistor>("RE" + tag, t, spice::kGround,
                              820.0 * tissue_scale);
    ckt->add<spice::Resistor>("RI" + tag, t, m, 390.0 * tissue_scale);
    ckt->add<spice::Capacitor>("CM" + tag, m, spice::kGround, 33e-9);
    prev = t;
  }
  ckt->add<spice::Resistor>("RL", prev, spice::kGround, 1e3);
  return ckt;
}

double BioZPlant::measure(double amplitude, double tissue_scale) {
  auto ckt = build_tissue_ladder(amplitude, tissue_scale, segments);
  if (analysis_hints) analyzer.apply_hints(*ckt);
  const std::string sense = "v(t" + std::to_string(sense_tap) + ")";
  spice::TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 50e-9;
  opts.record_every = 4;
  opts.record_signals = {sense};
  const auto res = spice::run_transient(*ckt, opts);
  ++measurements;
  // The pulse is high from ~1.1 us; average the settled back half.
  return res.mean_between(sense, 10e-6, 20e-6);
}

double bioz_tissue_scale(const std::optional<double>& thickness) {
  if (!thickness.has_value()) return 1.0;
  return std::clamp(*thickness / 10e-3, 0.5, 3.0);
}

}  // namespace ironic::fault
