// Fault injection points: the bridge between a FaultSchedule and the
// subsystems it perturbs.
//
// The injector is pull-based — magnetics asks "what is the coil distance
// now", comms channels are wrapped so every frame passing through picks
// up the bit errors active at that instant, pm asks for the drive and
// rail scales, the patch asks which brownouts fired since it last
// looked. Every applied fault is tallied locally and mirrored to the
// obs metrics registry as fault.injected.<kind>.
#pragma once

#include <cstdint>
#include <optional>

#include "src/comms/protocol.hpp"
#include "src/fault/schedule.hpp"
#include "src/util/rng.hpp"

namespace ironic::fault {

class FaultInjector {
 public:
  // `schedule` and `clock` must outlive the injector. `rng` drives the
  // stochastic comms faults (bit flips, burst start positions); give each
  // scenario its own util::Rng::stream so campaigns stay thread-count
  // invariant.
  FaultInjector(const FaultSchedule* schedule, const SimClock* clock,
                util::Rng rng);

  double now() const;

  // --- magnetics injection points -------------------------------------------
  // Base value unless a step fault of the matching kind governs `now()`.
  double distance(double base) const;
  double lateral_offset(double base) const;
  // Tissue slab thickness; nullopt = keep the configured medium.
  std::optional<double> tissue_thickness() const;

  // --- pm injection points --------------------------------------------------
  // Multiplier on the rectifier drive amplitude (kOvervoltage, >= 1).
  double drive_scale() const;
  // Multiplier on the LDO input rail (kLdoDropout, <= 1).
  double rail_scale() const;

  // --- patch injection points -----------------------------------------------
  // Total battery charge fraction lost to brownouts striking in (t0, t1].
  double brownout_fraction(double t0, double t1);

  // --- comms injection points -----------------------------------------------
  // Wrap a channel so frames passing through it at fault-active instants
  // pick up bit flips and burst inversions. The wrapper holds a reference
  // to this injector; keep the injector alive as long as the channel.
  comms::Channel wrap(comms::Channel inner, LinkDirection link);

  // Applied-fault tally (counted when a fault actually perturbs
  // something, not merely when it is scheduled).
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t total_injected() const;
  // Record one application of `kind`: the comms/brownout paths call this
  // internally; pull-based consumers (magnetics geometry, pm scales) call
  // it when they act on a non-default value.
  void note_applied(FaultKind kind);

 private:
  const FaultSchedule* schedule_;
  const SimClock* clock_;
  util::Rng rng_;
  std::uint64_t injected_[kFaultKindCount] = {};
};

}  // namespace ironic::fault
