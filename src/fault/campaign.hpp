// Named fault-resilience campaigns: end-to-end scenarios that drive the
// whole stack — magnetics link budget, ASK/LSK comms with the session
// layer, pm rectifier transients with checkpoint/restart, patch
// degradation — through scripted or stochastic fault schedules, and
// report recovery statistics.
//
// Campaigns are deterministic by construction: every scenario owns a
// SimClock and util::Rng streams keyed by (seed, scenario), results land
// in slot-indexed storage, so `run_campaign` is bit-identical for any
// `threads` value and any two same-seed runs (the fingerprint in the
// result is the contract the ctest gate checks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/schedule.hpp"

namespace ironic::fault {

struct CampaignConfig {
  std::string name = "ask_burst_coupling_drop";
  std::uint64_t seed = 0x1badc0deULL;
  int scenarios = 3;
  int exchanges = 10;      // measurements attempted per scenario
  std::size_t threads = 1; // scenario-level parallelism (1 = serial)
  // LinkPhy backend the scenarios run on (see link::backend_names()).
  // Campaigns written for a specific physical layer (me_backscatter_soak)
  // override this; the rest dispatch through it, and "inductive" is
  // bit-identical to the pre-LinkPhy pipeline.
  std::string link = "inductive";
  // Run the static-analysis passes over each rectifier-plant circuit and
  // install the solver/dt hints before the transient segments. Must not
  // change the fingerprint (the hints agree with the engine's own
  // choices; the ctest gate pins this).
  bool analysis_hints = false;
};

struct ScenarioResult {
  int index = 0;
  int exchanges = 0;   // measurement exchanges attempted
  int completed = 0;   // exchanges that delivered data
  int lost = 0;        // exchanges abandoned -> lost measurements
  int retries = 0;
  int recovered = 0;   // exchanges that needed >= 1 retry yet completed
  double recover_seconds = 0.0;  // elapsed summed over recovered exchanges
  double backoff_seconds = 0.0;
  int rate_fallbacks = 0;
  int rate_recoveries = 0;
  int restarts = 0;     // spice segments re-run from a committed checkpoint
  int checkpoints = 0;  // committed transient checkpoints
  int ldo_violations = 0;
  int brownouts = 0;
  double final_rate = 0.0;  // [bit/s] session rate at scenario end
  double sim_time = 0.0;    // scenario SimClock at the end [s]
  std::uint64_t faults_injected[kFaultKindCount] = {};
  std::vector<std::uint16_t> adc_codes;  // one per completed measurement
  // LinkPhy power queries served (telemetry only, never fingerprinted).
  std::uint64_t power_queries = 0;
};

struct CampaignResult {
  std::string name;
  std::vector<ScenarioResult> scenarios;
  int total_exchanges = 0;
  int completed = 0;
  int lost_measurements = 0;
  int retries = 0;
  int restarts = 0;
  int checkpoints = 0;
  // recovered / (exchanges that needed >= 1 retry); 1.0 when none did.
  double recovery_rate = 1.0;
  double mean_time_to_recover = 0.0;  // [s] over recovered exchanges
  std::uint64_t faults_injected[kFaultKindCount] = {};
  // FNV-1a over every deterministic scenario field, in index order; equal
  // fingerprints mean bit-identical campaigns.
  std::uint64_t fingerprint = 0;
};

// The registered campaign names:
//   ask_burst_coupling_drop  scripted: downlink burst errors, an
//                            overvoltage transient, then a permanent
//                            17 mm-sirloin coupling drop mid-session
//   stochastic_soak          every fault kind drawn from a seeded
//                            schedule; partial recovery allowed
//   brownout_shedding        battery brownouts against the patch
//                            degradation ladder
//   me_backscatter_soak      the magnetoelectric backend: a PWM chip
//                            burst, then a permanent field misalignment
//                            the rate ladder must buy back (always runs
//                            on --link me)
//   bioz_tissue_drift        bio-impedance workload: the Fricke ladder
//                            under a permanent Re/Ri drift plus comms
//                            and rail faults (runs on config.link)
std::vector<std::string> campaign_names();
bool is_campaign(const std::string& name);

// Run the named campaign. Throws std::invalid_argument on an unknown
// name, non-positive scenario/exchange counts, or a fault plan that
// fails static pre-validation (see validate.hpp): every scenario's
// schedule is checked against the run horizon, the per-kind magnitude
// domains, and — for the spice-plant campaign — the overvoltage
// reachability of the plant's static operating envelope, before any
// scenario executes.
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace ironic::fault
