// Small statistics helpers for waveform post-processing and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ironic::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double rms(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);
double peak_to_peak(std::span<const double> xs);

// Linear regression y = a + b x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

// Numerically integrate samples on a uniform grid (trapezoidal rule).
double integrate_uniform(std::span<const double> ys, double dt);

// Mean of |ys| over the samples (useful for average rectified values).
double mean_abs(std::span<const double> ys);

// Running summary accumulator for streaming simulation probes.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ironic::util
