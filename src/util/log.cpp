#include "src/util/log.hpp"

#include <cstdio>

namespace ironic::util {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[ironic %s] %s\n", level_name(level), msg.c_str());
}

void Log::debug(const std::string& msg) { emit(LogLevel::kDebug, msg); }
void Log::info(const std::string& msg) { emit(LogLevel::kInfo, msg); }
void Log::warn(const std::string& msg) { emit(LogLevel::kWarn, msg); }
void Log::error(const std::string& msg) { emit(LogLevel::kError, msg); }

}  // namespace ironic::util
