#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ironic::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;  // guards sink installation and lookup
Log::Sink g_sink;
Log::EventSink g_event_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::set_event_sink(EventSink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_event_sink = std::move(sink);
}

void Log::emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(Log::level())) return;
  // Copy the sink out so a sink that logs (or swaps sinks) cannot
  // deadlock against g_mutex; stderr writes are serialized by the FILE
  // lock itself.
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[ironic %s] %s\n", level_name(level), msg.c_str());
}

void Log::event(LogLevel level, const std::string& component,
                std::vector<Field> fields) {
  EventSink event_sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    event_sink = g_event_sink;
  }
  // The structured sink sees every event regardless of the text-level
  // filter: it feeds metrics/traces, not the console.
  if (event_sink) event_sink(level, component, fields);

  if (static_cast<int>(level) < static_cast<int>(Log::level())) return;
  std::string msg = component + ":";
  for (const auto& [k, v] : fields) {
    msg += ' ';
    msg += k;
    msg += '=';
    msg += v;
  }
  emit(level, msg);
}

void Log::debug(const std::string& msg) { emit(LogLevel::kDebug, msg); }
void Log::info(const std::string& msg) { emit(LogLevel::kInfo, msg); }
void Log::warn(const std::string& msg) { emit(LogLevel::kWarn, msg); }
void Log::error(const std::string& msg) { emit(LogLevel::kError, msg); }

}  // namespace ironic::util
