// Deterministic random number generation.
//
// Every stochastic element in the library (sensor noise, channel noise,
// jitter) draws from an explicitly seeded Rng so that tests and benches
// are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace ironic::util {

// xoshiro256++ — small, fast, and statistically strong; deterministic
// across platforms (unlike std::mt19937 + std::normal_distribution whose
// stream is implementation-defined for floating-point distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef00ull);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box–Muller (deterministic, cached pair).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);
  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);
  // A vector of `n` random bits, for test bitstreams.
  std::vector<bool> bits(std::size_t n);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ironic::util
