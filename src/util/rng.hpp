// Deterministic random number generation.
//
// Every stochastic element in the library (sensor noise, channel noise,
// jitter) draws from an explicitly seeded Rng so that tests and benches
// are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace ironic::util {

// xoshiro256++ — small, fast, and statistically strong; deterministic
// across platforms (unlike std::mt19937 + std::normal_distribution whose
// stream is implementation-defined for floating-point distributions).
//
// Stream splitting for parallel work: jump() advances the state by 2^128
// draws (the published xoshiro256++ jump polynomial), so split(n) hands
// out n generators whose output segments cannot overlap for any feasible
// draw count. Task i always draws from stream i regardless of which
// worker thread executes it — parallel sweeps are bit-identical to
// serial. A single Rng instance is NOT thread-safe; give each task its
// own stream instead of sharing one generator behind a lock.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef00ull);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box–Muller (deterministic, cached pair).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);
  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);
  // A vector of `n` random bits, for test bitstreams.
  std::vector<bool> bits(std::size_t n);

  // Advance the state by 2^128 draws (discards the Box–Muller cache so
  // the post-jump stream is a clean function of the state alone).
  void jump();
  // Advance by 2^192 draws, for partitioning across whole machines.
  void long_jump();
  // n non-overlapping streams: the i-th result is this generator's state
  // advanced by (i+1) jumps. The parent is left untouched and may keep
  // drawing — it stays at least 2^128 draws clear of every child.
  std::vector<Rng> split(std::size_t n) const;
  // Convenience for task fan-out: the generator for stream `index` of the
  // family seeded by `seed` (== Rng(seed).split(index + 1).back()).
  static Rng stream(std::uint64_t seed, std::uint64_t index);
  // O(1) keyed stream derivation for fleet-scale fan-out: stream() costs
  // `index` jumps, which turns quadratic when thousands of sessions each
  // ask for their own stream. hashed_stream mixes (seed, index) through
  // splitmix64 into a fresh generator state instead — constant cost per
  // stream, still bit-reproducible and thread-count independent. The
  // streams are statistically independent rather than provably
  // non-overlapping; call split() on the result when a session needs
  // provably disjoint sub-streams.
  static Rng hashed_stream(std::uint64_t seed, std::uint64_t index);

 private:
  void apply_jump(const std::uint64_t (&polynomial)[4]);

  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ironic::util
