// 1-D interpolation helpers used by waveform sources (PWL), calibration
// tables, and battery discharge curves.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace ironic::util {

// Piecewise-linear interpolation over sorted (x, y) breakpoints.
// Outside the table the value is clamped to the first/last y.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  // Breakpoints must be sorted by strictly increasing x; throws otherwise.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;
  bool empty() const { return xs_.empty(); }
  std::size_t size() const { return xs_.size(); }
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }

  // First x at which the curve crosses `level` (linear interpolation
  // between breakpoints); returns false if never crossed.
  bool first_crossing(double level, double& x_out) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// Linear interpolation between two scalars.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

// Clamp helper (std::clamp is fine but this reads better with doubles).
constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace ironic::util
