// Minimal leveled logging for simulator diagnostics.
//
// The engine reports Newton convergence trouble, step rejections, and
// similar events through this sink so tests can silence or capture them.
// Thread-safe: the level is an atomic and sink swap/emit are serialized
// behind a mutex, so worker threads of future parallel sweeps can log
// concurrently.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ironic::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  // Structured event field: key -> already-formatted value.
  using Field = std::pair<std::string, std::string>;
  using EventSink =
      std::function<void(LogLevel, const std::string& component,
                         const std::vector<Field>& fields)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  // Replace the output sink (default writes to stderr). Pass nullptr to
  // restore the default sink.
  static void set_sink(Sink sink);

  static void debug(const std::string& msg);
  static void info(const std::string& msg);
  static void warn(const std::string& msg);
  static void error(const std::string& msg);

  // Structured variant: `component` names the emitting subsystem (e.g.
  // "spice.transient") and fields are key=value pairs. When an event sink
  // is installed (the obs subsystem does this via install_log_bridge) the
  // record is delivered to it as data; it is ALSO formatted as
  // "component: k=v k=v" through the plain text path, subject to the
  // usual level filter.
  static void event(LogLevel level, const std::string& component,
                    std::vector<Field> fields);
  // Install/clear the structured sink (nullptr clears).
  static void set_event_sink(EventSink sink);

 private:
  static void emit(LogLevel level, const std::string& msg);
};

}  // namespace ironic::util
