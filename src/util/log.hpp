// Minimal leveled logging for simulator diagnostics.
//
// The engine reports Newton convergence trouble, step rejections, and
// similar events through this sink so tests can silence or capture them.
#pragma once

#include <functional>
#include <string>

namespace ironic::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log configuration. Thread-compatible (not thread-safe): the
// simulators in this library are single-threaded by design.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  // Replace the output sink (default writes to stderr). Pass nullptr to
  // restore the default sink.
  static void set_sink(Sink sink);

  static void debug(const std::string& msg);
  static void info(const std::string& msg);
  static void warn(const std::string& msg);
  static void error(const std::string& msg);

 private:
  static void emit(LogLevel level, const std::string& msg);
};

}  // namespace ironic::util
