#include "src/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ironic::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string Table::cell_si(double value, const std::string& unit, int precision) {
  return format_si(value, unit, precision);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " | ";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << " \n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_si(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
  };
  char buf[96];
  const double mag = std::abs(value);
  if (mag == 0.0 || std::isnan(value) || std::isinf(value)) {
    std::snprintf(buf, sizeof(buf), "%.*g %s", precision, value, unit.c_str());
    return buf;
  }
  for (const auto& prefix : kPrefixes) {
    if (mag >= prefix.scale) {
      std::snprintf(buf, sizeof(buf), "%.*g %s%s", precision, value / prefix.scale,
                    prefix.name, unit.c_str());
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.*g p%s", precision, value / 1e-12, unit.c_str());
  return buf;
}

}  // namespace ironic::util
