#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ironic::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double peak_to_peak(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return max_value(xs) - min_value(xs);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("linear_fit: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("linear_fit: need at least 2 points");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    throw std::invalid_argument("linear_fit: degenerate x values");
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double integrate_uniform(std::span<const double> ys, double dt) {
  if (ys.size() < 2) return 0.0;
  double sum = 0.5 * (ys.front() + ys.back());
  for (std::size_t i = 1; i + 1 < ys.size(); ++i) sum += ys[i];
  return sum * dt;
}

double mean_abs(std::span<const double> ys) {
  if (ys.empty()) return 0.0;
  double sum = 0.0;
  for (double y : ys) sum += std::abs(y);
  return sum / static_cast<double>(ys.size());
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  // Welford update.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ironic::util
