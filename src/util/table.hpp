// Aligned console tables and CSV emission for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables or figures;
// Table gives them a uniform, diff-friendly text rendering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ironic::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append a row; cells are formatted by the caller (use cell() helpers).
  void add_row(std::vector<std::string> cells);

  // Numeric cell formatting helpers.
  static std::string cell(double value, int precision = 4);
  static std::string cell_si(double value, const std::string& unit, int precision = 3);
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(bool b) { return b ? "yes" : "no"; }

  // Render with aligned columns.
  void print(std::ostream& os) const;
  // Render as CSV.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Read access for machine emitters (e.g. the sweep runner's JSON mode).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a value with an SI magnitude prefix, e.g. 1.5e-3, "W" -> "1.50 mW".
std::string format_si(double value, const std::string& unit, int precision = 3);

}  // namespace ironic::util
