// SI unit helpers for readable circuit and system descriptions.
//
// All quantities in the library are plain `double` in base SI units
// (volts, amperes, ohms, henries, farads, seconds, hertz, watts).
// These user-defined literals exist so that netlists and scenario
// configurations read like a datasheet:
//
//   auto c = Capacitor{10.0_nF};
//   link.set_distance(6.0_mm);
#pragma once

namespace ironic::units {

// --- magnitude prefixes -------------------------------------------------
constexpr double kPico = 1e-12;
constexpr double kNano = 1e-9;
constexpr double kMicro = 1e-6;
constexpr double kMilli = 1e-3;
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

// --- time ---------------------------------------------------------------
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * kPico; }
constexpr double operator""_min(long double v) { return static_cast<double>(v) * 60.0; }
constexpr double operator""_hr(long double v) { return static_cast<double>(v) * 3600.0; }

// --- electrical ---------------------------------------------------------
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * kPico; }
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * kMega; }
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * kNano; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * kPico; }
constexpr double operator""_H(long double v) { return static_cast<double>(v); }
constexpr double operator""_mH(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uH(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_nH(long double v) { return static_cast<double>(v) * kNano; }

// --- power / energy -----------------------------------------------------
constexpr double operator""_W(long double v) { return static_cast<double>(v); }
constexpr double operator""_mW(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_uW(long double v) { return static_cast<double>(v) * kMicro; }
constexpr double operator""_J(long double v) { return static_cast<double>(v); }
constexpr double operator""_mWh(long double v) { return static_cast<double>(v) * kMilli * 3600.0; }
constexpr double operator""_Wh(long double v) { return static_cast<double>(v) * 3600.0; }
constexpr double operator""_mAh(long double v) { return static_cast<double>(v) * kMilli * 3600.0; }

// --- frequency ----------------------------------------------------------
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * kKilo; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * kMega; }
constexpr double operator""_kbps(long double v) { return static_cast<double>(v) * kKilo; }

// --- geometry -----------------------------------------------------------
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_cm(long double v) { return static_cast<double>(v) * 1e-2; }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * kMilli; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * kMicro; }

// --- chemistry ----------------------------------------------------------
// Concentrations are mol/m^3 internally; 1 mM == 1 mol/m^3.
constexpr double operator""_mM(long double v) { return static_cast<double>(v); }
constexpr double operator""_uM(long double v) { return static_cast<double>(v) * kMilli; }

}  // namespace ironic::units
