// FNV-1a fingerprint accumulator over deterministic result fields.
//
// Campaign and fleet results prove their bit-identical-for-any-thread-
// count contract by hashing every deterministic field in slot order;
// equal fingerprints mean bit-identical runs. Doubles are hashed through
// their IEEE-754 bit pattern, so "close" values still diverge — that is
// the point: the fingerprint is an equality witness, not a similarity
// metric.
#pragma once

#include <bit>
#include <cstdint>

namespace ironic::util {

class Fingerprint {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void feed(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffu;
      hash_ *= kPrime;
    }
  }
  void feed(double value) { feed(std::bit_cast<std::uint64_t>(value)); }
  void feed_i(long long value) { feed(static_cast<std::uint64_t>(value)); }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffset;
};

}  // namespace ironic::util
