// Physical constants used across the magnetics, device, and sensor models.
#pragma once

namespace ironic::constants {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

// Vacuum permeability [H/m].
constexpr double kMu0 = 4.0e-7 * kPi;
// Vacuum permittivity [F/m].
constexpr double kEps0 = 8.8541878128e-12;
// Boltzmann constant [J/K].
constexpr double kBoltzmann = 1.380649e-23;
// Elementary charge [C].
constexpr double kElementaryCharge = 1.602176634e-19;
// Faraday constant [C/mol].
constexpr double kFaraday = 96485.33212;
// Ideal gas constant [J/(mol K)].
constexpr double kGasConstant = 8.31446261815324;

// Body temperature [K] — implants operate at 37 C.
constexpr double kBodyTemperature = 310.15;
// Lab / bench temperature [K].
constexpr double kRoomTemperature = 300.15;

// Thermal voltage kT/q at a given temperature [V].
constexpr double thermal_voltage(double temperature_kelvin) {
  return kBoltzmann * temperature_kelvin / kElementaryCharge;
}

// Copper resistivity at 20 C [Ohm m]; used by the spiral-inductor ESR model.
constexpr double kCopperResistivity = 1.68e-8;
// Copper temperature coefficient [1/K].
constexpr double kCopperTempCoeff = 3.93e-3;

// Muscle-tissue electrical properties near 5 MHz (Gabriel dispersion data,
// rounded): used by the tissue attenuation model standing in for the
// beef-sirloin measurements of the paper.
constexpr double kMuscleConductivity5MHz = 0.59;       // [S/m]
constexpr double kMuscleRelPermittivity5MHz = 250.0;   // [-]

}  // namespace ironic::constants
