#include "src/util/interp.hpp"

#include <algorithm>
#include <stdexcept>

namespace ironic::util {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() != ys_.size()) {
    throw std::invalid_argument("PiecewiseLinear: size mismatch");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) {
      throw std::invalid_argument("PiecewiseLinear: x must be strictly increasing");
    }
  }
}

double PiecewiseLinear::operator()(double x) const {
  if (xs_.empty()) return 0.0;
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return lerp(ys_[lo], ys_[hi], t);
}

bool PiecewiseLinear::first_crossing(double level, double& x_out) const {
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    const double y0 = ys_[i - 1];
    const double y1 = ys_[i];
    const bool crossed = (y0 < level && y1 >= level) || (y0 > level && y1 <= level);
    if (crossed) {
      const double t = (level - y0) / (y1 - y0);
      x_out = lerp(xs_[i - 1], xs_[i], t);
      return true;
    }
  }
  return false;
}

}  // namespace ironic::util
