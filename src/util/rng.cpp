#include "src/util/rng.hpp"

#include <cmath>

#include "src/util/constants.hpp"

namespace ironic::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = constants::kTwoPi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t value = 0;
  do {
    value = next_u64();
  } while (value >= limit);
  return value % n;
}

std::vector<bool> Rng::bits(std::size_t n) {
  std::vector<bool> result(n);
  for (std::size_t i = 0; i < n; ++i) result[i] = bernoulli(0.5);
  return result;
}

}  // namespace ironic::util
