#include "src/util/rng.hpp"

#include <cmath>

#include "src/util/constants.hpp"

namespace ironic::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = constants::kTwoPi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t value = 0;
  do {
    value = next_u64();
  } while (value >= limit);
  return value % n;
}

std::vector<bool> Rng::bits(std::size_t n) {
  std::vector<bool> result(n);
  for (std::size_t i = 0; i < n; ++i) result[i] = bernoulli(0.5);
  return result;
}

void Rng::apply_jump(const std::uint64_t (&polynomial)[4]) {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : polynomial) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  // A cached Box–Muller half drawn before the jump belongs to the old
  // position in the sequence; the stream after a jump must depend on the
  // state alone.
  has_cached_normal_ = false;
  cached_normal_ = 0.0;
}

void Rng::jump() {
  // Published xoshiro256++ jump polynomial (Blackman & Vigna): advances
  // the state by exactly 2^128 calls of next_u64().
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
      0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  apply_jump(kJump);
}

void Rng::long_jump() {
  // Published long-jump polynomial: 2^192 calls of next_u64().
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
      0x77710069854ee241ull, 0x39109bb02acbe635ull};
  apply_jump(kLongJump);
}

std::vector<Rng> Rng::split(std::size_t n) const {
  std::vector<Rng> streams;
  streams.reserve(n);
  Rng cursor = *this;
  for (std::size_t i = 0; i < n; ++i) {
    cursor.jump();
    streams.push_back(cursor);
  }
  return streams;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) {
  Rng rng(seed);
  for (std::uint64_t i = 0; i <= index; ++i) rng.jump();
  return rng;
}

Rng Rng::hashed_stream(std::uint64_t seed, std::uint64_t index) {
  // Fold the index into the seed through one splitmix64 round before the
  // constructor's expansion, so adjacent indices land on unrelated
  // states ((seed, 0) and (seed + 1, anything) differ too: the index is
  // pre-scaled by the splitmix increment, not added raw).
  std::uint64_t s = seed;
  std::uint64_t folded = splitmix64(s) ^ (index * 0x9e3779b97f4a7c15ull);
  return Rng(splitmix64(folded) ^ index);
}

}  // namespace ironic::util
