// AC (small-signal) analysis: linearize every device at the DC operating
// point and solve the complex MNA system over a frequency sweep.
//
// Used to verify the link tuning (series resonance at 5 MHz), the CA/CB
// matching network, and amplifier transfer functions — the frequency-
// domain complement of the transient engine.
#pragma once

#include <complex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/linalg/complex_matrix.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/engine.hpp"

namespace ironic::spice {

struct AcOptions {
  double f_start = 1e3;
  double f_stop = 1e9;
  int points_per_decade = 20;
  bool log_sweep = true;
  int linear_points = 100;  // used when log_sweep == false
  // Compute the operating point first (needed when nonlinear devices are
  // present); disable for purely linear networks with no DC excitation.
  bool use_operating_point = true;
  // Non-empty: linearize at this caller-supplied operating point (full
  // unknown vector, node voltages then branch currents) instead of
  // running solve_dc — the escape hatch for circuits whose bias point
  // only settles dynamically (e.g. the LDO and potentiostat loops; take
  // the final state of a settling transient).
  std::vector<double> operating_point;
  NewtonOptions newton;
  // Linear-solver backend for the complex system (and the DC operating
  // point), as in DcOptions::solver. The AC pattern is frequency-
  // invariant, so under the sparse backend every frequency after the
  // first is a numeric-only refactorization.
  linalg::SolverKind solver = linalg::SolverKind::kAuto;
};

class AcResult {
 public:
  AcResult() = default;
  AcResult(std::vector<std::string> names, std::vector<double> frequencies);

  void set_point(std::size_t freq_index, std::span<const linalg::Complex> x);

  const std::vector<double>& frequency() const { return frequencies_; }
  std::size_t num_points() const { return frequencies_.size(); }
  bool has_signal(const std::string& name) const;

  // Full complex response of a signal across the sweep.
  std::span<const linalg::Complex> signal(const std::string& name) const;
  // |H| and phase at one sweep index.
  double magnitude(const std::string& name, std::size_t index) const;
  double magnitude_db(const std::string& name, std::size_t index) const;
  double phase_deg(const std::string& name, std::size_t index) const;
  // Magnitude across the whole sweep.
  std::vector<double> magnitude(const std::string& name) const;

  // Frequency of the magnitude peak.
  double peak_frequency(const std::string& name) const;
  // First frequency (interpolated in log f) where the magnitude falls
  // `drop_db` below its peak, searching upward from the peak. Returns
  // false if it never does within the sweep.
  bool upper_corner_frequency(const std::string& name, double drop_db,
                              double& f_out) const;

 private:
  std::size_t column(const std::string& name) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<double> frequencies_;
  std::vector<std::vector<linalg::Complex>> data_;  // [signal][freq]
};

// Run the sweep. Throws std::logic_error if a device lacks an AC model
// and std::runtime_error if the operating point cannot be found.
AcResult run_ac(Circuit& circuit, const AcOptions& options = {});

// Input impedance seen by a (unit-AC) voltage source: -V/I at its branch.
// `source_name` must be a VoltageSource with set_ac(1.0).
std::vector<linalg::Complex> input_impedance(const AcResult& result,
                                             const std::string& source_name);

}  // namespace ironic::spice
