// Nonlinear devices: pn diode, level-1 MOSFET, smooth switch, op-amp.
//
// All nonlinear devices stamp Newton companion models (conductance +
// equivalent current) linearized at the present iterate, with classic
// SPICE-style junction limiting to keep the exponentials tame.
#pragma once

#include "src/spice/circuit.hpp"
#include "src/spice/device.hpp"

namespace ironic::spice {

struct DiodeParams {
  double saturation_current = 1e-14;  // Is [A]
  double emission_coeff = 1.0;        // n
  double temperature = 300.15;        // [K]
  // Reverse (Zener/avalanche) breakdown: 0 disables it. With a value,
  // the diode conducts exponentially once v < -breakdown_voltage — a
  // single-device alternative to the paper's four-diode clamp chain.
  double breakdown_voltage = 0.0;     // [V]
  double breakdown_is = 1e-6;         // breakdown knee current scale [A]
};

class Diode final : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {});
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void start_step(double time, double dt) override;
  bool nonlinear() const override { return true; }

  // Junction current at voltage v (exposed for tests and model fitting).
  double current(double v) const;
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId anode_, cathode_;
  DiodeParams params_;
  double vt_n_;     // n kT/q
  double vcrit_;    // critical voltage for pnjlim
  double v_prev_ = 0.0;
  bool have_prev_ = false;
};

enum class MosType { kNmos, kPmos };

// Level-1 (Shichman–Hodges) MOSFET with channel-length modulation, body
// effect, and optional bulk junction diodes. Parameter defaults are a
// generic 0.18 um-class device; the pm/ netlists override W/L per instance.
struct MosParams {
  MosType type = MosType::kNmos;
  double vt0 = 0.5;        // zero-bias threshold [V] (magnitude; sign from type)
  double kp = 170e-6;      // transconductance parameter u Cox [A/V^2]
  double w = 10e-6;        // channel width [m]
  double l = 0.18e-6;      // channel length [m]
  double lambda = 0.05;    // channel-length modulation [1/V]
  double gamma = 0.4;      // body-effect coefficient [sqrt(V)]
  double phi = 0.7;        // surface potential [V]
  bool bulk_diodes = true; // include bulk-source/bulk-drain junctions
  double junction_is = 1e-15;  // bulk junction saturation current [A]

  double beta() const { return kp * w / l; }
};

class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
         MosParams params);
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void start_step(double time, double dt) override;
  bool nonlinear() const override { return true; }
  const MosParams& params() const { return params_; }

  // Static drain current for given terminal voltages (exposed for tests).
  double drain_current(double vd, double vg, double vs, double vb) const;
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  struct Operating {
    double ids = 0.0;  // polarity-frame drain current (d_eff -> s_eff)
    double gm = 0.0, gds = 0.0, gmb = 0.0;
  };
  Operating evaluate(double vgs, double vds, double vbs) const;
  void stamp_bulk_junction(StampContext& ctx, NodeId anode, NodeId cathode,
                           double& v_prev, bool& have_prev);

  NodeId d_, g_, s_, b_;
  MosParams params_;
  double polarity_;  // +1 NMOS, -1 PMOS
  // Per-iteration limiting state.
  double vgs_prev_ = 0.0, vds_prev_ = 0.0;
  bool have_prev_ = false;
  double vbs_j_prev_ = 0.0, vbd_j_prev_ = 0.0;
  bool have_bs_prev_ = false, have_bd_prev_ = false;
};

// Voltage-controlled switch with a smooth (C1) log-resistance transition
// between `r_off` and `r_on` as the control voltage v(cp) - v(cn) moves
// from `v_off` to `v_on`. v_on < v_off yields an active-low switch.
struct SwitchParams {
  double r_on = 1.0;
  double r_off = 1e9;
  double v_on = 1.0;
  double v_off = 0.0;
};

class SmoothSwitch final : public Device {
 public:
  SmoothSwitch(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn,
               SwitchParams params = {});
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void start_step(double time, double dt) override;
  bool nonlinear() const override { return true; }

  // Conductance as a function of control voltage (exposed for tests).
  double conductance(double vc) const;
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId a_, b_, cp_, cn_;
  SwitchParams params_;
  double ln_g_on_, ln_g_off_;
  double vc_prev_ = 0.0;
  bool have_prev_ = false;
};

// Single-pole-free behavioural op-amp / comparator macromodel:
// v(out) = vmid + vhalf * tanh(gain * (v(inp) - v(inn) - offset) / vhalf).
// With a large gain this doubles as a rail-to-rail comparator.
struct OpAmpParams {
  double gain = 1e5;
  double v_out_min = 0.0;
  double v_out_max = 1.8;
  double input_offset = 0.0;
};

class OpAmp final : public Device {
 public:
  OpAmp(std::string name, NodeId out, NodeId inp, NodeId inn, OpAmpParams params = {});
  void setup(Circuit& ckt) override;
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void start_step(double time, double dt) override;
  bool nonlinear() const override { return true; }

  // Transfer function (exposed for tests).
  double transfer(double v_diff) const;
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId out_, inp_, inn_;
  OpAmpParams params_;
  int branch_ = -1;
  // Per-iteration limiting: the tanh saturates so hard that Newton can
  // chatter rail-to-rail without it.
  double vd_prev_ = 0.0;
  bool have_prev_ = false;
};

}  // namespace ironic::spice
