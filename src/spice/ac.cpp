#include "src/spice/ac.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::spice {

AcResult::AcResult(std::vector<std::string> names, std::vector<double> frequencies)
    : names_(std::move(names)), frequencies_(std::move(frequencies)) {
  data_.assign(names_.size(), std::vector<linalg::Complex>(frequencies_.size()));
  for (std::size_t i = 0; i < names_.size(); ++i) index_.emplace(names_[i], i);
}

void AcResult::set_point(std::size_t freq_index, std::span<const linalg::Complex> x) {
  if (x.size() != names_.size()) {
    throw std::invalid_argument("AcResult::set_point: size mismatch");
  }
  for (std::size_t s = 0; s < names_.size(); ++s) data_[s][freq_index] = x[s];
}

bool AcResult::has_signal(const std::string& name) const {
  return index_.count(name) > 0;
}

std::size_t AcResult::column(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::invalid_argument("AcResult: unknown signal '" + name + "'");
  }
  return it->second;
}

std::span<const linalg::Complex> AcResult::signal(const std::string& name) const {
  return data_[column(name)];
}

double AcResult::magnitude(const std::string& name, std::size_t index) const {
  return std::abs(data_[column(name)].at(index));
}

double AcResult::magnitude_db(const std::string& name, std::size_t index) const {
  return 20.0 * std::log10(std::max(magnitude(name, index), 1e-300));
}

double AcResult::phase_deg(const std::string& name, std::size_t index) const {
  return std::arg(data_[column(name)].at(index)) * 180.0 / constants::kPi;
}

std::vector<double> AcResult::magnitude(const std::string& name) const {
  const auto& col = data_[column(name)];
  std::vector<double> out(col.size());
  for (std::size_t i = 0; i < col.size(); ++i) out[i] = std::abs(col[i]);
  return out;
}

double AcResult::peak_frequency(const std::string& name) const {
  const auto mags = magnitude(name);
  const auto it = std::max_element(mags.begin(), mags.end());
  return frequencies_.at(static_cast<std::size_t>(it - mags.begin()));
}

bool AcResult::upper_corner_frequency(const std::string& name, double drop_db,
                                      double& f_out) const {
  const auto mags = magnitude(name);
  const auto peak_it = std::max_element(mags.begin(), mags.end());
  const double threshold = *peak_it * std::pow(10.0, -drop_db / 20.0);
  for (std::size_t i = static_cast<std::size_t>(peak_it - mags.begin()) + 1;
       i < mags.size(); ++i) {
    if (mags[i] <= threshold) {
      // Log-frequency interpolation between i-1 and i.
      const double m0 = mags[i - 1];
      const double m1 = mags[i];
      const double t = (m0 - threshold) / (m0 - m1);
      const double lf0 = std::log10(frequencies_[i - 1]);
      const double lf1 = std::log10(frequencies_[i]);
      f_out = std::pow(10.0, lf0 + t * (lf1 - lf0));
      return true;
    }
  }
  return false;
}

AcResult run_ac(Circuit& circuit, const AcOptions& options) {
  if (options.f_start <= 0.0 || options.f_stop <= options.f_start) {
    throw std::invalid_argument("run_ac: need 0 < f_start < f_stop");
  }
  circuit.finalize();
  const std::size_t n = circuit.num_unknowns();

  // Operating point for the linearization.
  std::vector<double> op(n, 0.0);
  if (!options.operating_point.empty()) {
    if (options.operating_point.size() != n) {
      throw std::invalid_argument("run_ac: operating_point size mismatch");
    }
    op = options.operating_point;
  } else if (options.use_operating_point) {
    DcOptions dc_opts;
    dc_opts.newton = options.newton;
    dc_opts.solver = options.solver;
    const DcResult dc = solve_dc(circuit, dc_opts);
    if (!dc.converged) {
      throw std::runtime_error("run_ac: DC operating point failed to converge");
    }
    op = dc.x;
    circuit.finalize();
  }

  // Frequency grid.
  std::vector<double> freqs;
  if (options.log_sweep) {
    const double decades = std::log10(options.f_stop / options.f_start);
    const int total = std::max(2, static_cast<int>(
                                      std::ceil(decades * options.points_per_decade)) + 1);
    for (int i = 0; i < total; ++i) {
      freqs.push_back(options.f_start *
                      std::pow(10.0, decades * i / (total - 1)));
    }
  } else {
    const int total = std::max(2, options.linear_points);
    for (int i = 0; i < total; ++i) {
      freqs.push_back(options.f_start +
                      (options.f_stop - options.f_start) * i / (total - 1));
    }
  }

  AcResult result(circuit.signal_names(), freqs);
  linalg::ComplexLinearSolver& solver =
      circuit.acquire_complex_solver(effective_solver_kind(options.solver));
  linalg::CVector rhs(n);
  linalg::CVector x(n);

  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double omega = constants::kTwoPi * freqs[fi];
    solver.begin_assembly();
    std::fill(rhs.begin(), rhs.end(), linalg::Complex{0.0, 0.0});
    AcStampContext ctx{solver, rhs, op, omega};
    for (const auto& dev : circuit.devices()) dev->stamp_ac(ctx);
    // Regularizing shunt, mirroring the transient engine's gshunt.
    for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
      solver.add(static_cast<int>(i), static_cast<int>(i), {1e-12, 0.0});
    }
    solver.factor();
    x = rhs;
    solver.solve_in_place(x);
    result.set_point(fi, x);
  }
  return result;
}

std::vector<linalg::Complex> input_impedance(const AcResult& result,
                                             const std::string& source_name) {
  const auto i_branch = result.signal("i(" + source_name + ")");
  std::vector<linalg::Complex> z(i_branch.size());
  for (std::size_t k = 0; k < i_branch.size(); ++k) {
    // Source convention: delivering current is negative at the branch;
    // with a 1 V AC stimulus, Zin = V / (-I).
    z[k] = i_branch[k] == linalg::Complex{0.0, 0.0}
               ? linalg::Complex{1e300, 0.0}
               : linalg::Complex{1.0, 0.0} / (-i_branch[k]);
  }
  return z;
}

}  // namespace ironic::spice
