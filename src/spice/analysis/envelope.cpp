// Interval operating-envelope pass.
//
// Bounds every node voltage by propagating independent-source value
// ranges through the circuit's rigid (ideal-voltage) edges, then closing
// the remaining nodes with a max-principle argument over their
// DC-conducting component:
//
//   1. Rigid fixpoint. Each rigid branch (voltage source, ESR-free
//      inductor winding, VCVS output) fixes v(a) - v(b) to a static
//      interval; op-amp outputs are clamped to their rail interval.
//      Iterating interval intersections to a fixpoint pins every node
//      that reaches ground through rigid edges ("anchored" nodes) to an
//      exact source-arithmetic band.
//   2. Component hull. A node connected to anchors only through
//      dissipative elements (R, diode, channel, ...) cannot leave the
//      hull of its component's anchored bands: monotone resistive
//      networks obey a discrete maximum principle. Floating rigid pairs
//      (a battery between two unanchored nodes) can offset a node from
//      the hull by at most the sum of the component's rigid-edge
//      magnitudes, and current injections (I sources, VCCS) by at most
//      I_total * R_eff.
//
// Envelope-unbounded diagnostics fire on *node* envelopes only; device
// current bounds may legitimately be astronomically large (a reverse
// diode corner evaluates the exponential at the envelope edge) without
// indicating a modeling problem.
#include <algorithm>
#include <cmath>

#include "src/spice/analysis/passes.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"

namespace ironic::spice::analysis::detail {
namespace {

// Width beyond which a (finite) node envelope is reported as effectively
// unbounded — nothing in an implant power chain swings a gigavolt.
constexpr double kUnboundedWidth = 1e9;
// Fallback effective resistance when a component has no usable ohmic sum
// (nonlinear channels or no anchor): the node leaks to ground only
// through gshunt = 1e-12 S.
constexpr double kGshuntResistance = 1e12;
// Clamp for corner evaluations of device models on unbounded envelopes.
constexpr double kCornerClamp = 1e12;

// One rigid edge: v(a) - v(b) in [olo, ohi]. VCVS edges recompute the
// offset each sweep from the controlling nodes' current intervals.
struct RigidEdge {
  int a = 0;
  int b = 0;
  double olo = 0.0;
  double ohi = 0.0;
  bool vcvs = false;
  int cp = 0;
  int cn = 0;
  double gain = 0.0;
};

// Intersect `target` with `cand`; contradictory constraints (a voltage
// loop the linter flags separately) collapse to the overlap midpoint so
// the fixpoint stays well defined.
void tighten(Interval& target, Interval cand) {
  double lo = std::max(target.lo, cand.lo);
  double hi = std::min(target.hi, cand.hi);
  if (lo > hi) {
    const double mid = 0.5 * (lo + hi);
    lo = mid;
    hi = mid;
  }
  target.lo = lo;
  target.hi = hi;
}

double clamp_corner(double v) {
  return std::clamp(v, -kCornerClamp, kCornerClamp);
}

}  // namespace

void unite_dc_groups(Dsu& dsu, const Entry& e, int ground_slot) {
  const auto slot = [ground_slot](NodeId n) {
    return n == kGround ? ground_slot : static_cast<int>(n);
  };
  if (!e.info.dc_groups.empty()) {
    for (const auto& group : e.info.dc_groups) {
      for (std::size_t i = 1; i < group.size(); ++i) {
        dsu.unite(slot(e.info.terminals[group[0]].node),
                  slot(e.info.terminals[group[i]].node));
      }
    }
  } else {
    int first = -1;
    for (const auto& t : e.info.terminals) {
      if (t.dc != TerminalDc::kConducting) continue;
      if (first < 0) {
        first = slot(t.node);
      } else {
        dsu.unite(first, slot(t.node));
      }
    }
  }
  for (const std::size_t ti : e.info.rigid_to_ground) {
    dsu.unite(slot(e.info.terminals[ti].node), ground_slot);
  }
}

EnvelopeResult run_envelope(const Circuit& circuit,
                            const std::vector<Entry>& entries,
                            std::vector<Diagnostic>& diagnostics) {
  EnvelopeResult result;
  const std::size_t num_nodes = circuit.num_nodes();
  const int ground_slot = static_cast<int>(num_nodes);
  const auto slot = [ground_slot](NodeId n) {
    return n == kGround ? ground_slot : static_cast<int>(n);
  };

  std::vector<Interval> v(num_nodes + 1);
  v[static_cast<std::size_t>(ground_slot)] = {0.0, 0.0};

  // --- rigid edges and rail clamps ---------------------------------------
  std::vector<RigidEdge> edges;
  struct Clamp {
    int node;
    Interval band;
  };
  std::vector<Clamp> clamps;
  for (const auto& e : entries) {
    const auto& info = e.info;
    for (const auto& [ta, tb] : info.rigid_pairs) {
      RigidEdge edge;
      edge.a = slot(info.terminals[ta].node);
      edge.b = slot(info.terminals[tb].node);
      switch (info.kind) {
        case DeviceKind::kVoltageSource:
          if (info.has_source_range) {
            edge.olo = info.source_min;
            edge.ohi = info.source_max;
          } else {
            edge.olo = -kInf;  // stimulus with no static range
            edge.ohi = kInf;
          }
          break;
        case DeviceKind::kVcvs:
          edge.vcvs = true;
          edge.cp = slot(info.terminals[2].node);
          edge.cn = slot(info.terminals[3].node);
          edge.gain = info.has_gain ? info.gain : 0.0;
          break;
        default:
          // ESR-free inductor / coupled winding: a DC short, offset 0.
          break;
      }
      edges.push_back(edge);
    }
    if (info.has_output_range) {
      for (const std::size_t ti : info.rigid_to_ground) {
        clamps.push_back({slot(info.terminals[ti].node),
                          {info.output_min, info.output_max}});
      }
    }
  }

  // --- rigid fixpoint ------------------------------------------------------
  // Bounded sweeps instead of a convergence test: each sweep can only
  // tighten, and information travels at most one edge per sweep, so
  // 2*(slots) + a margin is enough for any rigid chain.
  const std::size_t sweeps = 2 * (num_nodes + 2) + 8;
  for (std::size_t it = 0; it < sweeps; ++it) {
    for (const auto& c : clamps) tighten(v[static_cast<std::size_t>(c.node)], c.band);
    for (const auto& e : edges) {
      const Interval off =
          e.vcvs ? iv_scale(e.gain, iv_sub(v[static_cast<std::size_t>(e.cp)],
                                           v[static_cast<std::size_t>(e.cn)]))
                 : Interval{e.olo, e.ohi};
      tighten(v[static_cast<std::size_t>(e.a)],
              iv_add(v[static_cast<std::size_t>(e.b)], off));
      tighten(v[static_cast<std::size_t>(e.b)],
              iv_sub(v[static_cast<std::size_t>(e.a)], off));
    }
  }

  std::vector<char> anchored(num_nodes + 1, 0);
  for (std::size_t s = 0; s <= num_nodes; ++s) anchored[s] = v[s].finite() ? 1 : 0;

  // --- DC components -------------------------------------------------------
  Dsu dsu(num_nodes + 1);
  for (const auto& e : entries) unite_dc_groups(dsu, e, ground_slot);

  struct Component {
    Interval hull{0.0, 0.0};  // hull of anchored bands, always including 0
    bool any_anchored = false;
    double rigid_offset_sum = 0.0;  // floating rigid pairs' max offsets
    double ohmic_sum = 0.0;         // series-resistance upper bound
    bool nonlinear_channel = false;
    double injection = 0.0;         // worst-case injected current (A)
  };
  std::vector<Component> comps(num_nodes + 1);
  for (std::size_t s = 0; s <= num_nodes; ++s) {
    if (!anchored[s]) continue;
    auto& c = comps[static_cast<std::size_t>(dsu.find(static_cast<int>(s)))];
    c.any_anchored = true;
    c.hull.lo = std::min(c.hull.lo, v[s].lo);
    c.hull.hi = std::max(c.hull.hi, v[s].hi);
  }
  for (const auto& e : edges) {
    if (anchored[static_cast<std::size_t>(e.a)] ||
        anchored[static_cast<std::size_t>(e.b)]) {
      continue;  // propagation already folded this edge into the bands
    }
    const Interval off =
        e.vcvs ? iv_scale(e.gain, iv_sub(v[static_cast<std::size_t>(e.cp)],
                                         v[static_cast<std::size_t>(e.cn)]))
               : Interval{e.olo, e.ohi};
    comps[static_cast<std::size_t>(dsu.find(e.a))].rigid_offset_sum +=
        iv_max_abs(off);
  }
  for (const auto& e : entries) {
    const auto& info = e.info;
    switch (info.kind) {
      case DeviceKind::kResistor:
        if (info.has_value) {
          comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[0].node)))]
              .ohmic_sum += info.value;
        }
        break;
      case DeviceKind::kInductor: {
        const auto* l = dynamic_cast<const Inductor*>(e.device);
        if (l != nullptr && l->esr() > 0.0) {
          comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[0].node)))]
              .ohmic_sum += l->esr();
        }
        break;
      }
      case DeviceKind::kCoupledInductors: {
        const auto* x = dynamic_cast<const CoupledInductors*>(e.device);
        if (x != nullptr) {
          if (x->r_primary() > 0.0) {
            comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[0].node)))]
                .ohmic_sum += x->r_primary();
          }
          if (x->r_secondary() > 0.0) {
            comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[2].node)))]
                .ohmic_sum += x->r_secondary();
          }
        }
        break;
      }
      case DeviceKind::kDiode:
      case DeviceKind::kMosfet:
      case DeviceKind::kSwitch:
        for (const auto& t : info.terminals) {
          if (t.dc == TerminalDc::kConducting) {
            comps[static_cast<std::size_t>(dsu.find(slot(t.node)))]
                .nonlinear_channel = true;
          }
        }
        break;
      case DeviceKind::kCurrentSource: {
        const double i =
            info.has_source_range
                ? std::max(std::abs(info.source_min), std::abs(info.source_max))
                : kInf;
        for (const auto& t : info.terminals) {
          comps[static_cast<std::size_t>(dsu.find(slot(t.node)))].injection += i;
        }
        break;
      }
      case DeviceKind::kVccs: {
        const double ctrl = iv_max_abs(
            iv_sub(v[static_cast<std::size_t>(slot(info.terminals[2].node))],
                   v[static_cast<std::size_t>(slot(info.terminals[3].node))]));
        const double gm = info.has_gain ? std::abs(info.gain) : 0.0;
        const double i = gm == 0.0 ? 0.0 : gm * ctrl;
        comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[0].node)))]
            .injection += i;
        comps[static_cast<std::size_t>(dsu.find(slot(info.terminals[1].node)))]
            .injection += i;
        break;
      }
      default:
        break;
    }
  }

  // --- close unanchored nodes against their component ---------------------
  for (std::size_t s = 0; s < num_nodes; ++s) {
    if (anchored[s]) continue;
    const auto& c = comps[static_cast<std::size_t>(dsu.find(static_cast<int>(s)))];
    const double r_eff = (c.nonlinear_channel || !c.any_anchored)
                             ? kGshuntResistance
                             : c.ohmic_sum;
    // (1 + 1e-9): absorb the engine-side rounding of v = I * R so the
    // containment property holds with exact comparisons.
    const double ir = c.injection == 0.0 ? 0.0 : c.injection * r_eff * (1.0 + 1e-9);
    const double widen = c.rigid_offset_sum + ir;
    tighten(v[s], {c.hull.lo - widen, c.hull.hi + widen});
  }

  // --- node report + diagnostics ------------------------------------------
  result.nodes.reserve(num_nodes);
  for (std::size_t s = 0; s < num_nodes; ++s) {
    result.nodes.push_back(NodeEnvelope{circuit.node_name(static_cast<NodeId>(s)),
                                        v[s].lo, v[s].hi, anchored[s] != 0});
    if (!v[s].finite() || v[s].width() > kUnboundedWidth) {
      diagnostics.push_back(Diagnostic{
          Severity::kWarning, "analysis.envelope-unbounded", "",
          circuit.node_name(static_cast<NodeId>(s)),
          "static envelope is unbounded -- no rigid path to ground constrains "
          "this node's worst-case voltage"});
    }
  }

  const auto band = [&](NodeId n) { return v[static_cast<std::size_t>(slot(n))]; };

  // Overvoltage pre-check: rated junctions whose worst-case *reverse*
  // corner exceeds the rating. (Forward corners are clamped by the
  // junction itself; the static band cannot see that.)
  for (const auto& e : entries) {
    const auto& info = e.info;
    if (info.voltage_rating <= 0.0 || info.terminals.size() < 2) continue;
    const Interval vd = iv_sub(band(info.terminals[0].node), band(info.terminals[1].node));
    if (vd.lo < -info.voltage_rating) {
      diagnostics.push_back(Diagnostic{
          Severity::kWarning, "analysis.overvoltage-risk", e.device->name(), "",
          "worst-case reverse voltage " + std::to_string(vd.lo) +
              " V exceeds the " + std::to_string(info.voltage_rating) +
              " V rating"});
    }
  }

  // --- device current bounds ----------------------------------------------
  // Two rounds: conduction devices first, then branch devices (ideal
  // voltage branches) via KCL at their terminals; the second round lets
  // a branch bound computed in round one feed a neighboring branch.
  const std::size_t num_devices = entries.size();
  std::vector<DeviceCurrentBound> bounds(num_devices);
  std::vector<char> is_branch(num_devices, 0);
  for (std::size_t di = 0; di < num_devices; ++di) {
    const auto& e = entries[di];
    const auto& info = e.info;
    auto& out = bounds[di];
    out.device = e.device->name();
    const auto vd = [&](std::size_t ta, std::size_t tb) {
      return iv_sub(band(info.terminals[ta].node), band(info.terminals[tb].node));
    };
    const auto set = [&out](double value) {
      out.bounded = std::isfinite(value);
      out.max_abs_current = out.bounded ? value : 0.0;
    };
    switch (info.kind) {
      case DeviceKind::kResistor:
        if (info.has_value && info.value > 0.0) set(iv_max_abs(vd(0, 1)) / info.value);
        break;
      case DeviceKind::kCapacitor:
        set(0.0);  // blocking at DC
        break;
      case DeviceKind::kInductor: {
        const auto* l = dynamic_cast<const Inductor*>(e.device);
        if (l != nullptr && l->esr() > 0.0) {
          set(iv_max_abs(vd(0, 1)) / l->esr());
        } else {
          is_branch[di] = 1;
        }
        break;
      }
      case DeviceKind::kCoupledInductors: {
        const auto* x = dynamic_cast<const CoupledInductors*>(e.device);
        if (x != nullptr && x->r_primary() > 0.0 && x->r_secondary() > 0.0) {
          set(std::max(iv_max_abs(vd(0, 1)) / x->r_primary(),
                       iv_max_abs(vd(2, 3)) / x->r_secondary()));
        } else {
          is_branch[di] = 1;
        }
        break;
      }
      case DeviceKind::kCurrentSource:
        if (info.has_source_range) {
          set(std::max(std::abs(info.source_min), std::abs(info.source_max)));
        }
        break;
      case DeviceKind::kVccs: {
        const double gm = info.has_gain ? std::abs(info.gain) : 0.0;
        const double ctrl = iv_max_abs(vd(2, 3));
        if (gm == 0.0) {
          set(0.0);
        } else if (std::isfinite(ctrl)) {
          set(gm * ctrl);
        }
        break;
      }
      case DeviceKind::kDiode: {
        const auto* d = dynamic_cast<const Diode*>(e.device);
        const Interval b = vd(0, 1);
        if (d != nullptr) {
          const double i_lo = d->current(clamp_corner(b.lo));
          const double i_hi = d->current(clamp_corner(b.hi));
          const double worst = std::max(std::abs(i_lo), std::abs(i_hi));
          if (std::isfinite(worst)) set(worst);
        }
        break;
      }
      case DeviceKind::kSwitch: {
        const auto* sw = dynamic_cast<const SmoothSwitch*>(e.device);
        const Interval vc = vd(2, 3);
        if (sw != nullptr) {
          const double g = std::max(sw->conductance(clamp_corner(vc.lo)),
                                    sw->conductance(clamp_corner(vc.hi)));
          const double worst = g * iv_max_abs(vd(0, 1));
          if (std::isfinite(worst)) set(worst);
        }
        break;
      }
      case DeviceKind::kMosfet: {
        // Corner-sampled: |Id| is evaluated at the 16 envelope corners of
        // (d, g, s, b). The square-law model is monotone enough in each
        // terminal for this to be the practical worst case, but it is a
        // sample, not a proof (DESIGN.md §13).
        const auto* m = dynamic_cast<const Mosfet*>(e.device);
        if (m != nullptr && info.terminals.size() == 4) {
          double worst = 0.0;
          const Interval bd = band(info.terminals[0].node);
          const Interval bg = band(info.terminals[1].node);
          const Interval bs = band(info.terminals[2].node);
          const Interval bb = band(info.terminals[3].node);
          for (int mask = 0; mask < 16; ++mask) {
            const double cd = clamp_corner((mask & 1) != 0 ? bd.hi : bd.lo);
            const double cg = clamp_corner((mask & 2) != 0 ? bg.hi : bg.lo);
            const double cs = clamp_corner((mask & 4) != 0 ? bs.hi : bs.lo);
            const double cb = clamp_corner((mask & 8) != 0 ? bb.hi : bb.lo);
            worst = std::max(worst, std::abs(m->drain_current(cd, cg, cs, cb)));
          }
          if (std::isfinite(worst)) set(worst);
        }
        break;
      }
      case DeviceKind::kVoltageSource:
      case DeviceKind::kVcvs:
      case DeviceKind::kOpAmp:
        is_branch[di] = 1;
        break;
      default:
        break;
    }
  }
  // KCL closure for ideal-voltage branches: the branch current cannot
  // exceed the summed bounds of every *other* device on either terminal.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t di = 0; di < num_devices; ++di) {
      if (!is_branch[di]) continue;
      const auto& info = entries[di].info;
      double best = kInf;
      for (const auto& t : info.terminals) {
        if (t.dc != TerminalDc::kConducting || t.node == kGround) continue;
        double sum = 0.0;
        bool usable = true;
        for (std::size_t dj = 0; dj < num_devices && usable; ++dj) {
          if (dj == di) continue;
          bool touches = false;
          for (const auto& tj : entries[dj].info.terminals) {
            if (tj.dc == TerminalDc::kConducting && tj.node == t.node) {
              touches = true;
              break;
            }
          }
          if (!touches) continue;
          if (bounds[dj].bounded) {
            sum += bounds[dj].max_abs_current;
          } else {
            usable = false;
          }
        }
        if (usable) best = std::min(best, sum);
      }
      if (std::isfinite(best)) {
        bounds[di].bounded = true;
        bounds[di].max_abs_current = best;
      }
    }
  }
  result.currents = std::move(bounds);
  return result;
}

}  // namespace ironic::spice::analysis::detail
