// Timescale / stiffness pass.
//
// Estimates the circuit's dynamic timescales from reflection data alone:
//
//   tau_RC   C * (R_a + R_b) with R_x the cheapest ohmic exit at each
//            capacitor terminal (0 at ground or at a rigidly anchored
//            node, whose voltage the sources pin)
//   tau_LR   L / (ESR + R_a + R_b) for inductive branches
//   t_LC     2*pi*sqrt(L*C) for inductor/capacitor pairs that share a
//            DC-conducting component (resonant tanks)
//   t_stim   the smallest intrinsic stimulus timescale any waveform
//            advertises (period, edge time, PWL segment)
//   t_bp     the smallest gap between stimulus breakpoints in
//            [0, transient_horizon]
//
// The dt recommendation resolves over whichever terms exist:
//   dt = min(t_stim/4, t_LC/16, tau_min/4, t_bp), floored at 1 ps,
// which by construction never exceeds the smallest breakpoint interval
// (pinned by the property test in tests/spice_analysis_test.cpp).
// A tau_max/tau_min spread beyond 1e6 earns an informational
// analysis.stiff diagnostic.
#include <algorithm>
#include <cmath>

#include "src/spice/analysis/passes.hpp"
#include "src/spice/devices_passive.hpp"

namespace ironic::spice::analysis::detail {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kDtFloor = 1e-12;
constexpr double kStiffnessThreshold = 1e6;

void track_min(double& slot, double candidate) {
  if (candidate <= 0.0 || !std::isfinite(candidate)) return;
  if (slot == 0.0 || candidate < slot) slot = candidate;
}

void track_max(double& slot, double candidate) {
  if (candidate <= 0.0 || !std::isfinite(candidate)) return;
  if (candidate > slot) slot = candidate;
}

}  // namespace

TimescaleResult run_timescale(const Circuit& circuit,
                              const std::vector<Entry>& entries,
                              const EnvelopeResult& envelope,
                              double transient_horizon,
                              std::vector<Diagnostic>& diagnostics) {
  TimescaleResult result;
  const std::size_t num_nodes = circuit.num_nodes();
  const int ground_slot = static_cast<int>(num_nodes);
  const auto slot = [ground_slot](NodeId n) {
    return n == kGround ? ground_slot : static_cast<int>(n);
  };

  // Cheapest ohmic exit per node slot (0 = none known).
  std::vector<double> min_r(num_nodes + 1, 0.0);
  const auto offer_r = [&](NodeId node, double r) {
    if (r <= 0.0) return;
    auto& cell = min_r[static_cast<std::size_t>(slot(node))];
    if (cell == 0.0 || r < cell) cell = r;
  };
  for (const auto& e : entries) {
    const auto& info = e.info;
    switch (info.kind) {
      case DeviceKind::kResistor:
        if (info.has_value) {
          offer_r(info.terminals[0].node, info.value);
          offer_r(info.terminals[1].node, info.value);
        }
        break;
      case DeviceKind::kInductor: {
        const auto* l = dynamic_cast<const Inductor*>(e.device);
        if (l != nullptr && l->esr() > 0.0) {
          offer_r(info.terminals[0].node, l->esr());
          offer_r(info.terminals[1].node, l->esr());
        }
        break;
      }
      case DeviceKind::kCoupledInductors: {
        const auto* x = dynamic_cast<const CoupledInductors*>(e.device);
        if (x != nullptr) {
          if (x->r_primary() > 0.0) {
            offer_r(info.terminals[0].node, x->r_primary());
            offer_r(info.terminals[1].node, x->r_primary());
          }
          if (x->r_secondary() > 0.0) {
            offer_r(info.terminals[2].node, x->r_secondary());
            offer_r(info.terminals[3].node, x->r_secondary());
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // R seen from one terminal: 0 at ground/anchored nodes, the cheapest
  // adjacent ohmic exit otherwise; negative = unknown (no ohmic exit).
  const auto terminal_r = [&](NodeId node) -> double {
    if (node == kGround) return 0.0;
    const std::size_t s = static_cast<std::size_t>(node);
    if (s < envelope.nodes.size() && envelope.nodes[s].anchored) return 0.0;
    const double r = min_r[s];
    return r > 0.0 ? r : -1.0;
  };

  // DC components for LC-tank pairing.
  Dsu dsu(num_nodes + 1);
  for (const auto& e : entries) unite_dc_groups(dsu, e, ground_slot);

  struct Reactive {
    double value = 0.0;
    int comp = 0;
  };
  std::vector<Reactive> inductors;
  std::vector<Reactive> capacitors;

  for (const auto& e : entries) {
    const auto& info = e.info;
    switch (info.kind) {
      case DeviceKind::kCapacitor: {
        if (!info.has_value || info.value <= 0.0) break;
        const double ra = terminal_r(info.terminals[0].node);
        const double rb = terminal_r(info.terminals[1].node);
        if (ra >= 0.0 && rb >= 0.0 && ra + rb > 0.0) {
          const double tau = info.value * (ra + rb);
          track_min(result.tau_min, tau);
          track_max(result.tau_max, tau);
        }
        capacitors.push_back(
            {info.value, dsu.find(slot(info.terminals[0].node))});
        break;
      }
      case DeviceKind::kInductor: {
        const auto* l = dynamic_cast<const Inductor*>(e.device);
        if (l == nullptr || l->inductance() <= 0.0) break;
        const double ra = terminal_r(info.terminals[0].node);
        const double rb = terminal_r(info.terminals[1].node);
        const double r_total =
            l->esr() + std::max(ra, 0.0) + std::max(rb, 0.0);
        if (r_total > 0.0) {
          const double tau = l->inductance() / r_total;
          track_min(result.tau_min, tau);
          track_max(result.tau_max, tau);
        }
        inductors.push_back(
            {l->inductance(), dsu.find(slot(info.terminals[0].node))});
        break;
      }
      case DeviceKind::kCoupledInductors: {
        const auto* x = dynamic_cast<const CoupledInductors*>(e.device);
        if (x == nullptr) break;
        struct Winding {
          double l, r;
          std::size_t ta, tb;
        };
        const Winding windings[2] = {
            {x->l_primary(), x->r_primary(), 0, 1},
            {x->l_secondary(), x->r_secondary(), 2, 3},
        };
        for (const auto& w : windings) {
          if (w.l <= 0.0) continue;
          const double ra = terminal_r(info.terminals[w.ta].node);
          const double rb = terminal_r(info.terminals[w.tb].node);
          const double r_total = w.r + std::max(ra, 0.0) + std::max(rb, 0.0);
          if (r_total > 0.0) {
            const double tau = w.l / r_total;
            track_min(result.tau_min, tau);
            track_max(result.tau_max, tau);
          }
          inductors.push_back(
              {w.l, dsu.find(slot(info.terminals[w.ta].node))});
        }
        break;
      }
      default:
        break;
    }
    track_min(result.t_stim_min, info.stimulus_timescale);
  }

  // LC tanks: a capacitor whose terminal nodes touch an inductor's
  // DC component rings at 2*pi*sqrt(LC).
  for (const auto& cap : capacitors) {
    for (const auto& ind : inductors) {
      if (cap.comp != ind.comp) continue;
      track_min(result.t_osc_min, 2.0 * kPi * std::sqrt(ind.value * cap.value));
    }
  }

  // Breakpoint density over [0, horizon]; t = 0 always counts.
  std::vector<double> breakpoints{0.0};
  for (const auto& e : entries) {
    e.device->collect_breakpoints(0.0, transient_horizon, breakpoints);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  for (std::size_t i = 1; i < breakpoints.size(); ++i) {
    const double gap = breakpoints[i] - breakpoints[i - 1];
    if (gap > 1e-15) track_min(result.t_breakpoint_min, gap);
  }

  if (result.tau_min > 0.0 && result.tau_max > 0.0) {
    result.stiffness_ratio = result.tau_max / result.tau_min;
    if (result.stiffness_ratio > kStiffnessThreshold) {
      diagnostics.push_back(Diagnostic{
          Severity::kInfo, "analysis.stiff", "", "",
          "time constants span " + std::to_string(result.stiffness_ratio) +
              "x (" + std::to_string(result.tau_min) + " s to " +
              std::to_string(result.tau_max) +
              " s) -- expect small steps or consider an implicit-stiff "
              "integrator"});
    }
  }

  double dt = 0.0;
  track_min(dt, result.t_stim_min / 4.0);
  track_min(dt, result.t_osc_min / 16.0);
  track_min(dt, result.tau_min / 4.0);
  track_min(dt, result.t_breakpoint_min);
  if (dt > 0.0) {
    result.dt_recommend = std::max(dt, kDtFloor);
    // The floor must never push the recommendation past the breakpoint
    // spacing (the property the tests pin), however dense the stimulus.
    if (result.t_breakpoint_min > 0.0) {
      result.dt_recommend = std::min(result.dt_recommend, result.t_breakpoint_min);
    }
  }
  return result;
}

}  // namespace ironic::spice::analysis::detail
