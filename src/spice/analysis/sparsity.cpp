// Symbolic sparsity / fill-prediction pass.
//
// Captures the exact stamp stream the engine's first DC Newton assembly
// would produce — same device order, same start_step(0, 0) reset, same
// zero iterate, gmin, source scale, and unconditional gshunt diagonals —
// and replays it through linalg::predict_sparse_factor, which mirrors
// SparseSolver's pattern merge and left-looking LU bit for bit. The
// predicted factor nnz therefore matches the runtime
// SparseSolver::stats().factor_nnz exactly (pinned by
// tests/spice_analysis_test.cpp on every example netlist).
#include <stdexcept>
#include <vector>

#include "src/linalg/costmodel.hpp"
#include "src/spice/analysis/passes.hpp"
#include "src/spice/engine.hpp"

namespace ironic::spice::analysis::detail {
namespace {

// LinearSolver facade that records add() calls in order instead of
// assembling a matrix. factor/solve are never reached by stamping.
class CaptureSolver final : public linalg::LinearSolver {
 public:
  explicit CaptureSolver(std::size_t n) : n_(n) {}

  const char* name() const override { return "capture"; }
  linalg::SolverKind kind() const override { return linalg::SolverKind::kAuto; }
  std::size_t size() const override { return n_; }

  void begin_assembly() override { entries_.clear(); }
  void add(int row, int col, double value) override {
    entries_.push_back({row, col, value});
  }
  void factor(double /*pivot_tol*/) override {
    throw std::logic_error("CaptureSolver records stamps; it cannot factor");
  }
  void solve_in_place(std::span<double> /*b*/) override {
    throw std::logic_error("CaptureSolver records stamps; it cannot solve");
  }
  double diagonal_ratio() const override { return 0.0; }
  void invalidate_structure() override {}
  const linalg::SolverStats& stats() const override { return stats_; }

  const std::vector<linalg::MatrixEntry>& entries() const { return entries_; }

 private:
  std::size_t n_;
  std::vector<linalg::MatrixEntry> entries_;
  linalg::SolverStats stats_;
};

}  // namespace

SparsityResult run_sparsity(Circuit& circuit) {
  SparsityResult result;
  circuit.finalize();  // allocate branch unknowns, as solve_dc does
  const std::size_t n = circuit.num_unknowns();
  result.unknowns = n;
  if (n == 0) return result;

  CaptureSolver capture(n);
  std::vector<double> rhs(n, 0.0);
  std::vector<double> x(n, 0.0);
  const NewtonOptions defaults;

  // Replicate solve_dc's first assembly: reset per-point device state so
  // the capture neither sees nor leaves junction-limiting history, then
  // stamp the zero iterate in DC context.
  capture.begin_assembly();
  for (const auto& dev : circuit.devices()) dev->start_step(0.0, 0.0);
  StampContext ctx{capture,
                   rhs,
                   x,
                   /*time=*/0.0,
                   /*dt=*/0.0,
                   Integrator::kBackwardEuler,
                   /*dc=*/true,
                   defaults.gmin,
                   /*source_scale=*/1.0,
                   /*limited=*/false};
  for (const auto& dev : circuit.devices()) dev->stamp(ctx);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    capture.add(static_cast<int>(i), static_cast<int>(i), defaults.gshunt);
  }

  result.prediction = linalg::predict_sparse_factor(n, capture.entries());
  result.cost = linalg::choose_solver(result.prediction);
  return result;
}

}  // namespace ironic::spice::analysis::detail
