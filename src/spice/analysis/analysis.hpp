// Netlist static-analysis framework (DESIGN.md §13).
//
// `AnalysisManager` runs an ordered sequence of passes over a Circuit's
// reflection data (Device::info) and the MNA stamp stream, without ever
// solving the system:
//
//   lint       the existing rule-based linter (src/spice/lint.hpp)
//   envelope   interval operating-envelope analysis: propagate source
//              value ranges through the DC-conductivity graph with
//              interval arithmetic, bounding worst-case node voltages
//              and branch currents
//   sparsity   symbolic fill prediction: replay the sparse backend's
//              pattern merge and left-looking LU on the captured stamp
//              stream (src/linalg/costmodel.hpp), predicting factor nnz
//              and flop count, then pick dense vs sparse from the cost
//              model instead of the bare kSparseAutoThreshold cutoff
//   timescale  RC / L-over-R time constants, LC periods, and stimulus
//              breakpoint density, distilled into an initial/max-dt
//              recommendation and a stiffness warning
//
// Results are cached per (circuit, topology revision) — re-running on an
// unchanged netlist is a pointer-and-counter compare. `apply_hints`
// installs the solver recommendation (Circuit::set_solver_hint) and the
// dt recommendation (Circuit::set_dt_hint); the engine honors them only
// where the caller left the corresponding option at auto, so hints can
// never override an explicit request.
//
// Diagnostic catalog (extends the lint.* set, same Diagnostic type):
//   analysis.overvoltage-risk   worst-case reverse voltage across a rated
//                               junction exceeds its rating     (warning)
//   analysis.envelope-unbounded a node's static envelope is unbounded or
//                               implausibly wide                (warning)
//   analysis.stiff              time-constant spread exceeds 1e6 (info)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/costmodel.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/lint.hpp"

namespace ironic::spice::analysis {

struct AnalysisOptions {
  // Lint in DC-operating-point context (inductor loops and current
  // cutsets escalate to errors); forwarded to the embedded lint pass.
  bool dc_context = false;
  // Window scanned for stimulus breakpoints by the timescale pass.
  double transient_horizon = 1e-3;
};

// Worst-case static voltage band of one node. `anchored` nodes are tied
// to ground through a chain of rigid (ideal-voltage) branches, so the
// band is exact source arithmetic; unanchored nodes carry a conservative
// max-principle bound over their DC-conducting component.
struct NodeEnvelope {
  std::string node;
  double lo = 0.0;
  double hi = 0.0;
  bool anchored = false;
};

// Conservative worst-case current magnitude through one device (the
// larger winding/branch for multi-branch devices). `bounded` is false
// when the envelope gives no finite bound (e.g. an exponential junction
// across an unbounded voltage band).
struct DeviceCurrentBound {
  std::string device;
  double max_abs_current = 0.0;
  bool bounded = false;
};

struct EnvelopeResult {
  std::vector<NodeEnvelope> nodes;  // circuit node-id order
  std::vector<DeviceCurrentBound> currents;  // device registration order
};

struct SparsityResult {
  std::size_t unknowns = 0;
  linalg::FactorPrediction prediction;
  linalg::SolverCostModel cost;
  // "dense" or "sparse" — the cost model's recommendation.
  const char* choice() const {
    return cost.recommendation == linalg::SolverKind::kSparse ? "sparse" : "dense";
  }
};

// All timescale fields use 0 for "no such term found".
struct TimescaleResult {
  double tau_min = 0.0;          // smallest RC / L-over-R time constant
  double tau_max = 0.0;
  double t_osc_min = 0.0;        // smallest LC period 2*pi*sqrt(LC)
  double t_stim_min = 0.0;       // smallest intrinsic stimulus timescale
  double t_breakpoint_min = 0.0; // smallest gap between source breakpoints
  double stiffness_ratio = 0.0;  // tau_max / tau_min
  double dt_recommend = 0.0;     // recommended max transient step
};

struct PassTiming {
  std::string pass;
  std::uint64_t ns = 0;
  bool cached = false;  // result served from the manager's cache
};

struct AnalysisReport {
  LintReport lint;
  EnvelopeResult envelope;
  SparsityResult sparsity;
  TimescaleResult timescale;
  // analysis.* diagnostics (the lint.* ones live in `lint`).
  std::vector<Diagnostic> diagnostics;
  std::vector<PassTiming> timings;

  // Combined severity counts across lint.* and analysis.* diagnostics.
  std::size_t errors() const;
  std::size_t warnings() const;
  bool ok() const { return errors() == 0; }
  bool clean() const { return lint.clean() && diagnostics.empty(); }

  // Multi-line human-readable summary (always non-empty).
  std::string to_text() const;
  // Machine-readable report: envelope bands, predicted fill + costs, dt
  // recommendation, pass timings, and both diagnostic sets.
  std::string to_json() const;
};

class AnalysisManager {
 public:
  explicit AnalysisManager(AnalysisOptions options = {}) : options_(options) {}

  // Run every pass (or serve the cached report when the circuit and its
  // topology revision are unchanged). Finalizes the circuit; stamps
  // devices once but leaves no lasting device state (the engines reset
  // per-point state on entry).
  const AnalysisReport& run(Circuit& circuit);

  // run() + install the solver/dt hints on the circuit. The solver hint
  // is withheld when the symbolic factorization predicts a singular
  // matrix (the engine's escalation path should keep its own choice).
  const AnalysisReport& apply_hints(Circuit& circuit);

  void invalidate() { valid_ = false; }

 private:
  AnalysisOptions options_;
  const Circuit* circuit_ = nullptr;
  std::uint64_t revision_ = 0;
  bool valid_ = false;
  AnalysisReport report_;
};

// One-shot conveniences over a throwaway manager.
AnalysisReport analyze(Circuit& circuit, const AnalysisOptions& options = {});
void apply_hints(Circuit& circuit, const AnalysisReport& report);

}  // namespace ironic::spice::analysis
