// Internal pass entry points and shared helpers for the static-analysis
// framework. Not installed as public API — include analysis.hpp instead.
#pragma once

#include <limits>
#include <numeric>
#include <vector>

#include "src/spice/analysis/analysis.hpp"
#include "src/spice/device.hpp"

namespace ironic::spice::analysis::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Closed interval [lo, hi]; lo may be -inf, hi may be +inf, lo <= hi.
// The bound shapes guarantee additions below never pair +inf with -inf,
// so no NaN can appear (see envelope.cpp).
struct Interval {
  double lo = -kInf;
  double hi = kInf;

  bool finite() const { return lo > -kInf && hi < kInf; }
  double width() const { return hi - lo; }
};

inline Interval iv_add(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }
inline Interval iv_sub(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }
inline Interval iv_scale(double k, Interval a) {
  if (k == 0.0) return {0.0, 0.0};  // 0 * inf would be NaN
  if (k > 0.0) return {k * a.lo, k * a.hi};
  return {k * a.hi, k * a.lo};
}
// Largest magnitude in the interval; +inf when unbounded.
inline double iv_max_abs(Interval a) {
  const double lo = a.lo < 0.0 ? -a.lo : a.lo;
  const double hi = a.hi < 0.0 ? -a.hi : a.hi;
  return lo > hi ? lo : hi;
}

// Union-find over node slots (ground mapped to the extra slot n), the
// same component semantics the linter uses for DC connectivity.
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(a)] = b;
  }
};

// Reflection snapshot, taken once per analysis run and shared by passes.
struct Entry {
  const Device* device = nullptr;
  DeviceInfo info;
};

// Unite the slots of `e`'s DC-conducting terminal groups (dc_groups, or
// all kConducting terminals when empty) plus its rigid-to-ground pins.
void unite_dc_groups(Dsu& dsu, const Entry& e, int ground_slot);

EnvelopeResult run_envelope(const Circuit& circuit,
                            const std::vector<Entry>& entries,
                            std::vector<Diagnostic>& diagnostics);

SparsityResult run_sparsity(Circuit& circuit);

TimescaleResult run_timescale(const Circuit& circuit,
                              const std::vector<Entry>& entries,
                              const EnvelopeResult& envelope,
                              double transient_horizon,
                              std::vector<Diagnostic>& diagnostics);

}  // namespace ironic::spice::analysis::detail
