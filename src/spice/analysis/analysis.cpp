#include "src/spice/analysis/analysis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/spice/analysis/passes.hpp"

namespace ironic::spice::analysis {
namespace {

using detail::Entry;

struct AnalysisMetrics {
  obs::Counter& runs;
  obs::Counter& cache_hits;
  obs::Counter& hints_applied;
  obs::Counter& lint_ns;
  obs::Counter& envelope_ns;
  obs::Counter& sparsity_ns;
  obs::Counter& timescale_ns;
  obs::Gauge& last_unknowns;
  obs::Gauge& last_factor_nnz;
  obs::Gauge& last_dt_recommend;

  static AnalysisMetrics& get() {
    static AnalysisMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return AnalysisMetrics{
          r.counter("spice.analysis.runs"),
          r.counter("spice.analysis.cache_hits"),
          r.counter("spice.analysis.hints_applied"),
          r.counter("spice.analysis.lint_ns"),
          r.counter("spice.analysis.envelope_ns"),
          r.counter("spice.analysis.sparsity_ns"),
          r.counter("spice.analysis.timescale_ns"),
          r.gauge("spice.analysis.last_unknowns"),
          r.gauge("spice.analysis.last_factor_nnz"),
          r.gauge("spice.analysis.last_dt_recommend"),
      };
    }();
    return m;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// JSON helper: finite -> number, non-finite -> null (JSON has no inf).
obs::json::Value json_number(double v) {
  using obs::json::Value;
  return std::isfinite(v) ? Value(v) : Value(nullptr);
}

obs::json::Value diagnostics_json(const std::vector<Diagnostic>& diagnostics) {
  using obs::json::Value;
  Value::Array items;
  for (const auto& d : diagnostics) {
    Value::Object o;
    o["severity"] = severity_name(d.severity);
    o["rule"] = d.rule_id;
    if (!d.device.empty()) o["device"] = d.device;
    if (!d.node.empty()) o["node"] = d.node;
    o["message"] = d.message;
    items.emplace_back(std::move(o));
  }
  return Value(std::move(items));
}

}  // namespace

std::size_t AnalysisReport::errors() const {
  return lint.errors() +
         static_cast<std::size_t>(std::count_if(
             diagnostics.begin(), diagnostics.end(),
             [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t AnalysisReport::warnings() const {
  return lint.warnings() +
         static_cast<std::size_t>(std::count_if(
             diagnostics.begin(), diagnostics.end(),
             [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << "analysis: " << sparsity.unknowns << " unknowns, "
     << sparsity.prediction.pattern_nnz << " nnz, predicted factor nnz "
     << sparsity.prediction.factor_nnz << "\n";
  os << "solver choice: " << sparsity.choice() << " (dense cost "
     << sparsity.cost.dense_cost << ", sparse cost " << sparsity.cost.sparse_cost
     << (sparsity.prediction.singular ? ", prediction singular" : "") << ")\n";
  if (timescale.dt_recommend > 0.0) {
    os << "dt recommendation: " << timescale.dt_recommend << " s";
    if (timescale.tau_min > 0.0) {
      os << " (tau " << timescale.tau_min << " .. " << timescale.tau_max << " s)";
    }
    os << "\n";
  }
  os << "node envelopes:\n";
  for (const auto& n : envelope.nodes) {
    os << "  " << n.node << ": [" << n.lo << ", " << n.hi << "]"
       << (n.anchored ? " anchored" : "") << "\n";
  }
  for (const auto& d : lint.diagnostics) os << d.to_string() << "\n";
  for (const auto& d : diagnostics) os << d.to_string() << "\n";
  os << errors() << " error(s), " << warnings() << " warning(s)\n";
  return os.str();
}

std::string AnalysisReport::to_json() const {
  using obs::json::Value;
  Value::Object root;
  root["unknowns"] = static_cast<std::uint64_t>(sparsity.unknowns);

  Value::Array nodes;
  for (const auto& n : envelope.nodes) {
    Value::Object o;
    o["node"] = n.node;
    o["lo"] = json_number(n.lo);
    o["hi"] = json_number(n.hi);
    o["anchored"] = n.anchored;
    nodes.emplace_back(std::move(o));
  }
  Value::Array currents;
  for (const auto& c : envelope.currents) {
    Value::Object o;
    o["device"] = c.device;
    o["bounded"] = c.bounded;
    if (c.bounded) o["max_abs_current"] = json_number(c.max_abs_current);
    currents.emplace_back(std::move(o));
  }
  Value::Object env;
  env["nodes"] = std::move(nodes);
  env["currents"] = std::move(currents);
  root["envelope"] = std::move(env);

  Value::Object sp;
  sp["pattern_nnz"] = static_cast<std::uint64_t>(sparsity.prediction.pattern_nnz);
  sp["factor_nnz"] = static_cast<std::uint64_t>(sparsity.prediction.factor_nnz);
  sp["factor_flops"] = sparsity.prediction.factor_flops;
  sp["solve_flops"] = sparsity.prediction.solve_flops;
  sp["singular"] = sparsity.prediction.singular;
  sp["dense_cost"] = sparsity.cost.dense_cost;
  sp["sparse_cost"] = sparsity.cost.sparse_cost;
  sp["solver_choice"] = sparsity.choice();
  root["sparsity"] = std::move(sp);

  Value::Object ts;
  ts["tau_min"] = timescale.tau_min;
  ts["tau_max"] = timescale.tau_max;
  ts["t_osc_min"] = timescale.t_osc_min;
  ts["t_stim_min"] = timescale.t_stim_min;
  ts["t_breakpoint_min"] = timescale.t_breakpoint_min;
  ts["stiffness_ratio"] = timescale.stiffness_ratio;
  ts["dt_recommend"] = timescale.dt_recommend;
  root["timescale"] = std::move(ts);

  Value::Array passes;
  for (const auto& t : timings) {
    Value::Object o;
    o["pass"] = t.pass;
    o["ns"] = static_cast<std::uint64_t>(t.ns);
    o["cached"] = t.cached;
    passes.emplace_back(std::move(o));
  }
  root["passes"] = std::move(passes);

  root["lint"] = Value::parse(lint.to_json());
  root["diagnostics"] = diagnostics_json(diagnostics);
  root["errors"] = static_cast<std::uint64_t>(errors());
  root["warnings"] = static_cast<std::uint64_t>(warnings());
  return Value(std::move(root)).dump(2);
}

const AnalysisReport& AnalysisManager::run(Circuit& circuit) {
  if (valid_ && circuit_ == &circuit && revision_ == circuit.revision()) {
    if constexpr (obs::kEnabled) AnalysisMetrics::get().cache_hits.add();
    for (auto& t : report_.timings) t.cached = true;
    return report_;
  }
  PROF_ZONE("spice.analysis");
  report_ = AnalysisReport{};

  std::vector<Entry> entries;
  entries.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) {
    entries.push_back(Entry{dev.get(), dev->info()});
  }

  const auto timed = [this](const char* pass, obs::Counter& sink, auto&& body) {
    const std::uint64_t t0 = now_ns();
    body();
    const std::uint64_t ns = now_ns() - t0;
    report_.timings.push_back(PassTiming{pass, ns, false});
    if constexpr (obs::kEnabled) sink.add(ns);
  };

  auto& m = AnalysisMetrics::get();
  timed("lint", m.lint_ns, [&] {
    LintOptions lint_options;
    lint_options.dc_context = options_.dc_context;
    report_.lint = lint(circuit, lint_options);
  });
  timed("envelope", m.envelope_ns, [&] {
    report_.envelope = detail::run_envelope(circuit, entries, report_.diagnostics);
  });
  timed("sparsity", m.sparsity_ns,
        [&] { report_.sparsity = detail::run_sparsity(circuit); });
  timed("timescale", m.timescale_ns, [&] {
    report_.timescale =
        detail::run_timescale(circuit, entries, report_.envelope,
                              options_.transient_horizon, report_.diagnostics);
  });

  if constexpr (obs::kEnabled) {
    m.runs.add();
    m.last_unknowns.set(static_cast<double>(report_.sparsity.unknowns));
    m.last_factor_nnz.set(static_cast<double>(report_.sparsity.prediction.factor_nnz));
    m.last_dt_recommend.set(report_.timescale.dt_recommend);
  }

  circuit_ = &circuit;
  revision_ = circuit.revision();
  valid_ = true;
  return report_;
}

const AnalysisReport& AnalysisManager::apply_hints(Circuit& circuit) {
  const AnalysisReport& report = run(circuit);
  analysis::apply_hints(circuit, report);
  return report;
}

AnalysisReport analyze(Circuit& circuit, const AnalysisOptions& options) {
  AnalysisManager manager(options);
  return manager.run(circuit);
}

void apply_hints(Circuit& circuit, const AnalysisReport& report) {
  // A singular prediction means the replayed factorization never
  // finished; leave the backend choice to the engine's escalation path.
  if (report.sparsity.unknowns > 0 && !report.sparsity.prediction.singular) {
    circuit.set_solver_hint(report.sparsity.cost.recommendation);
  }
  if (report.timescale.dt_recommend > 0.0) {
    circuit.set_dt_hint(report.timescale.dt_recommend);
  }
  if constexpr (obs::kEnabled) AnalysisMetrics::get().hints_applied.add();
}

}  // namespace ironic::spice::analysis
