// Transient simulation results: recorded waveforms plus the waveform
// post-processing the benches and tests rely on (crossings, windowed
// extrema, envelopes).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ironic::spice {

class TransientResult {
 public:
  TransientResult() = default;
  TransientResult(std::vector<std::string> names, std::vector<std::size_t> recorded_indices);

  // --- engine interface ---------------------------------------------------
  void append(double time, std::span<const double> x);
  void reserve(std::size_t points);

  // --- access --------------------------------------------------------------
  const std::vector<double>& time() const { return time_; }
  std::size_t num_points() const { return time_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  bool has_signal(const std::string& name) const;
  // Full recorded waveform; name is "v(<node>)" or "i(<branch>)".
  std::span<const double> signal(const std::string& name) const;
  std::span<const double> voltage(const std::string& node) const;
  std::span<const double> current(const std::string& branch) const;

  // --- analysis -------------------------------------------------------------
  // Linear interpolation at time t (clamped to the simulated range).
  double value_at(const std::string& name, double t) const;
  // Extrema / mean over the window [t0, t1].
  double min_between(const std::string& name, double t0, double t1) const;
  double max_between(const std::string& name, double t0, double t1) const;
  double mean_between(const std::string& name, double t0, double t1) const;
  double rms_between(const std::string& name, double t0, double t1) const;
  double peak_abs_between(const std::string& name, double t0, double t1) const;
  // Mean of f(name) * g(other) over a window — used for average power.
  double mean_product_between(const std::string& name, const std::string& other,
                              double t0, double t1) const;
  // First time after `after` at which the signal crosses `level` rising
  // (or falling). Returns false if never.
  bool first_crossing(const std::string& name, double level, double after, bool rising,
                      double& t_out) const;
  // Sample the signal at a list of times.
  std::vector<double> sample(const std::string& name, std::span<const double> times) const;

  // Write the recorded waveforms as CSV (time first, then the requested
  // signals — all recorded signals when `signals` is empty). `decimate`
  // keeps every k-th row to bound file size.
  void write_csv(std::ostream& os, std::vector<std::string> signals = {},
                 int decimate = 1) const;

 private:
  std::span<const double> column(const std::string& name) const;
  void window_indices(double t0, double t1, std::size_t& lo, std::size_t& hi) const;

  std::vector<std::string> names_;                       // recorded signal names
  std::vector<std::size_t> recorded_indices_;            // unknown index per column
  std::unordered_map<std::string, std::size_t> index_;   // name -> column
  std::vector<double> time_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace ironic::spice
