#include "src/spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// Split a line into tokens; parentheses groups like SIN(0 1 5meg) become
// "sin(" ... ")" split at whitespace and commas, so we normalize by
// inserting spaces around parens and commas first.
std::vector<std::string> tokenize(const std::string& line) {
  std::string spaced;
  for (char c : line) {
    if (c == '(' || c == ')' || c == ',' || c == '=') {
      spaced.push_back(' ');
      spaced.push_back(c);
      spaced.push_back(' ');
    } else {
      spaced.push_back(c);
    }
  }
  std::istringstream ss(spaced);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(lower(token));
  return tokens;
}

// Key=value options from the tail of a token list (tokens are already
// split as key, '=', value).
std::map<std::string, std::string> parse_options(const std::vector<std::string>& tokens,
                                                 std::size_t start, int line) {
  std::map<std::string, std::string> opts;
  for (std::size_t i = start; i < tokens.size(); i += 3) {
    if (tokens.size() - i < 3) {
      throw NetlistError(line, "dangling option '" + tokens[i] + "'");
    }
    if (tokens[i + 1] != "=") {
      throw NetlistError(line, "expected '=' after '" + tokens[i] + "'");
    }
    opts[tokens[i]] = tokens[i + 2];
  }
  return opts;
}

double opt_value(const std::map<std::string, std::string>& opts, const std::string& key,
                 double fallback, int line) {
  const auto it = opts.find(key);
  if (it == opts.end()) return fallback;
  try {
    return parse_spice_value(it->second);
  } catch (const std::invalid_argument&) {
    throw NetlistError(line, "bad value for " + key + ": '" + it->second + "'");
  }
}

double require_value(const std::string& token, int line, const std::string& what) {
  try {
    return parse_spice_value(token);
  } catch (const std::invalid_argument&) {
    throw NetlistError(line, "bad " + what + ": '" + token + "'");
  }
}

// Parse a stimulus specification starting at tokens[i]; returns the
// Waveform and advances i past it.
Waveform parse_stimulus(const std::vector<std::string>& tokens, std::size_t& i,
                        int line) {
  if (i >= tokens.size()) throw NetlistError(line, "missing stimulus");
  const std::string kind = tokens[i];

  const auto read_group = [&](std::size_t min_args) {
    ++i;  // kind
    if (i >= tokens.size() || tokens[i] != "(") {
      throw NetlistError(line, "expected '(' after " + kind);
    }
    ++i;
    std::vector<double> args;
    while (i < tokens.size() && tokens[i] != ")") {
      args.push_back(require_value(tokens[i], line, kind + " argument"));
      ++i;
    }
    if (i >= tokens.size()) throw NetlistError(line, "unterminated " + kind + "(...)");
    ++i;  // ')'
    if (args.size() < min_args) {
      throw NetlistError(line, kind + " needs at least " + std::to_string(min_args) +
                                   " arguments");
    }
    return args;
  };

  if (kind == "dc") {
    ++i;
    if (i >= tokens.size()) throw NetlistError(line, "DC needs a value");
    const double v = require_value(tokens[i], line, "DC value");
    ++i;
    return Waveform::dc(v);
  }
  if (kind == "sin") {
    const auto args = read_group(3);
    const double offset = args[0];
    const double amplitude = args[1];
    const double freq = args[2];
    const double delay = args.size() > 3 ? args[3] : 0.0;
    return Waveform::sine(amplitude, freq, offset, delay);
  }
  if (kind == "pulse") {
    const auto args = read_group(7);
    return Waveform::pulse(args[0], args[1], args[2], args[3], args[4], args[5],
                           args[6]);
  }
  if (kind == "pwl") {
    const auto args = read_group(2);
    if (args.size() % 2 != 0) {
      throw NetlistError(line, "PWL needs time/value pairs");
    }
    std::vector<double> ts, vs;
    for (std::size_t k = 0; k < args.size(); k += 2) {
      ts.push_back(args[k]);
      vs.push_back(args[k + 1]);
    }
    try {
      return Waveform::pwl(std::move(ts), std::move(vs));
    } catch (const std::invalid_argument& e) {
      throw NetlistError(line, std::string("bad PWL: ") + e.what());
    }
  }
  // Bare number == DC value.
  const double v = require_value(kind, line, "stimulus");
  ++i;
  return Waveform::dc(v);
}

// ------------------------------------------------------ subcircuit support

struct NumberedLine {
  int number = 0;
  std::vector<std::string> tokens;
};

struct Subckt {
  std::vector<std::string> ports;
  std::vector<NumberedLine> body;
};

// Node positions per element kind (for subcircuit expansion).
std::vector<std::size_t> node_positions(const std::vector<std::string>& tokens,
                                        const std::map<std::string, Subckt>& subckts,
                                        int line) {
  switch (tokens[0][0]) {
    case 'r':
    case 'c':
    case 'l':
    case 'v':
    case 'i':
    case 'd':
      return {1, 2};
    case 'm':
    case 's':
    case 'e':
    case 'g':
      return {1, 2, 3, 4};
    case 'k':
      return {};  // references inductor names, handled separately
    case 'x': {
      // Nodes run up to the subcircuit/OPAMP keyword.
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "opamp" || subckts.count(tokens[i]) > 0) {
          std::vector<std::size_t> out;
          for (std::size_t k = 1; k < i; ++k) out.push_back(k);
          return out;
        }
      }
      throw NetlistError(line, "X line names no known subcircuit");
    }
    default:
      return {};
  }
}

// Expand an instance body: privatize names and internal nodes, map ports.
void expand_subckt(const std::string& instance, const Subckt& sub,
                   const std::vector<std::string>& outer_nodes,
                   const std::map<std::string, Subckt>& subckts,
                   std::vector<NumberedLine>& out, int depth, int line) {
  if (depth > 16) throw NetlistError(line, "subcircuit nesting too deep");
  if (outer_nodes.size() != sub.ports.size()) {
    throw NetlistError(line, "subcircuit instance has " +
                                 std::to_string(outer_nodes.size()) + " nodes, needs " +
                                 std::to_string(sub.ports.size()));
  }
  std::map<std::string, std::string> port_map;
  for (std::size_t i = 0; i < sub.ports.size(); ++i) {
    port_map[sub.ports[i]] = outer_nodes[i];
  }
  const auto map_node = [&](const std::string& token) -> std::string {
    if (token == "0" || token == "gnd") return "0";
    const auto it = port_map.find(token);
    return it != port_map.end() ? it->second : instance + "." + token;
  };

  for (const auto& body_line : sub.body) {
    NumberedLine mapped = body_line;
    // Privatize the element name as a *suffix* so the leading letter —
    // which selects the element kind — is preserved.
    mapped.tokens[0] = mapped.tokens[0] + "@" + instance;
    for (std::size_t pos : node_positions(body_line.tokens, subckts, body_line.number)) {
      mapped.tokens[pos] = map_node(body_line.tokens[pos]);
    }
    if (body_line.tokens[0][0] == 'k') {
      // Coupling lines reference (now privatized) inductor names.
      mapped.tokens[1] = body_line.tokens[1] + "@" + instance;
      mapped.tokens[2] = body_line.tokens[2] + "@" + instance;
    }
    if (body_line.tokens[0][0] == 'x') {
      // Nested instance of a user subcircuit: recurse.
      std::size_t kw = 0;
      for (std::size_t i = 1; i < body_line.tokens.size(); ++i) {
        if (body_line.tokens[i] == "opamp" || subckts.count(body_line.tokens[i]) > 0) {
          kw = i;
          break;
        }
      }
      if (kw > 0 && body_line.tokens[kw] != "opamp") {
        std::vector<std::string> inner_nodes;
        for (std::size_t i = 1; i < kw; ++i) {
          inner_nodes.push_back(map_node(body_line.tokens[i]));
        }
        expand_subckt(mapped.tokens[0], subckts.at(body_line.tokens[kw]), inner_nodes,
                      subckts, out, depth + 1, body_line.number);
        continue;
      }
    }
    out.push_back(std::move(mapped));
  }
}

// Record of a parsed inductor (K-lines may convert pairs of them).
struct InductorRecord {
  std::string name;
  NodeId a = kGround, b = kGround;
  double value = 0.0;
  double esr = 0.0;
  double ic = 0.0;
  int line = 0;
  bool consumed = false;
};

struct CouplingRecord {
  std::string name, la, lb;
  double k = 0.0;
  int line = 0;
};

}  // namespace

double parse_spice_value(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty value");
  const std::string t = lower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (...) {
    throw std::invalid_argument("not a number: " + token);
  }
  // std::stod happily parses "nan", "inf", and overflowing exponents;
  // none of them is a usable component value.
  if (!std::isfinite(value)) {
    throw std::invalid_argument("non-finite value: " + token);
  }
  std::string suffix = t.substr(pos);
  // Strip trailing unit letters (10nF, 4.7kOhm) after the magnitude.
  static const std::map<std::string, double> kSuffixes = {
      {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6}, {"m", 1e-3},
      {"k", 1e3},   {"meg", 1e6}, {"g", 1e9},
  };
  if (suffix.empty()) return value;
  // Longest match first ("meg" before "m").
  for (const std::string key : {"meg", "f", "p", "n", "u", "m", "k", "g"}) {
    if (suffix.rfind(key, 0) == 0) {
      const std::string rest = suffix.substr(key.size());
      for (char c : rest) {
        if (!std::isalpha(static_cast<unsigned char>(c))) {
          throw std::invalid_argument("bad value suffix: " + token);
        }
      }
      return value * kSuffixes.at(key);
    }
  }
  // Pure unit letters (e.g. "5V") are allowed.
  for (char c : suffix) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("bad value suffix: " + token);
    }
  }
  return value;
}

int parse_netlist(Circuit& circuit, const std::string& text) {
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  int created = 0;
  std::vector<InductorRecord> inductors;
  std::vector<CouplingRecord> couplings;

  const auto node = [&](const std::string& name) { return circuit.node(name); };

  // Pass 1: tokenize, collect .subckt definitions, and expand instances
  // into a flat element list.
  std::map<std::string, Subckt> subckts;
  std::vector<NumberedLine> flat;
  {
    std::vector<NumberedLine> raw_lines;
    while (std::getline(stream, raw)) {
      ++line_no;
      auto tokens = tokenize(raw);
      if (tokens.empty() || tokens[0][0] == '*') continue;
      if (tokens[0] == ".end") break;
      raw_lines.push_back({line_no, std::move(tokens)});
    }
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const auto& tokens = raw_lines[i].tokens;
      if (tokens[0] == ".subckt") {
        if (tokens.size() < 2) {
          throw NetlistError(raw_lines[i].number, ".subckt needs a name");
        }
        Subckt sub;
        sub.ports.assign(tokens.begin() + 2, tokens.end());
        std::size_t j = i + 1;
        for (; j < raw_lines.size() && raw_lines[j].tokens[0] != ".ends"; ++j) {
          sub.body.push_back(raw_lines[j]);
        }
        if (j >= raw_lines.size()) {
          throw NetlistError(raw_lines[i].number, "unterminated .subckt");
        }
        subckts[tokens[1]] = std::move(sub);
        i = j;  // skip past .ends
        continue;
      }
      if (tokens[0][0] == '.') continue;  // other directives ignored
      if (tokens[0][0] == 'x') {
        // User-subcircuit instance? (OPAMP stays a primitive.)
        std::size_t kw = 0;
        for (std::size_t k = 1; k < tokens.size(); ++k) {
          if (tokens[k] == "opamp" || subckts.count(tokens[k]) > 0) {
            kw = k;
            break;
          }
        }
        if (kw > 0 && tokens[kw] != "opamp") {
          std::vector<std::string> nodes(tokens.begin() + 1, tokens.begin() + kw);
          expand_subckt(tokens[0], subckts.at(tokens[kw]), nodes, subckts, flat, 0,
                        raw_lines[i].number);
          continue;
        }
      }
      flat.push_back(raw_lines[i]);
    }
  }

  // Pass 2: stamp every flattened element into the circuit.
  for (const auto& element : flat) {
    const auto& tokens = element.tokens;
    const std::string& head = tokens[0];
    line_no = element.number;

    const auto need = [&](std::size_t n, const char* what) {
      if (tokens.size() < n) throw NetlistError(line_no, std::string("too few fields for ") + what);
    };

    try {
      switch (head[0]) {
        case 'r': {
          need(4, "resistor");
          circuit.add<Resistor>(head, node(tokens[1]), node(tokens[2]),
                                require_value(tokens[3], line_no, "resistance"));
          ++created;
          break;
        }
        case 'c': {
          need(4, "capacitor");
          const auto opts = parse_options(tokens, 4, line_no);
          circuit.add<Capacitor>(head, node(tokens[1]), node(tokens[2]),
                                 require_value(tokens[3], line_no, "capacitance"),
                                 opt_value(opts, "ic", 0.0, line_no));
          ++created;
          break;
        }
        case 'l': {
          need(4, "inductor");
          const auto opts = parse_options(tokens, 4, line_no);
          InductorRecord rec;
          rec.name = head;
          rec.a = node(tokens[1]);
          rec.b = node(tokens[2]);
          rec.value = require_value(tokens[3], line_no, "inductance");
          rec.esr = opt_value(opts, "esr", 0.0, line_no);
          rec.ic = opt_value(opts, "ic", 0.0, line_no);
          rec.line = line_no;
          inductors.push_back(rec);
          break;
        }
        case 'k': {
          need(4, "coupling");
          CouplingRecord rec;
          rec.name = head;
          rec.la = tokens[1];
          rec.lb = tokens[2];
          rec.k = require_value(tokens[3], line_no, "coupling coefficient");
          rec.line = line_no;
          couplings.push_back(rec);
          break;
        }
        case 'v': {
          need(4, "voltage source");
          std::size_t i = 3;
          circuit.add<VoltageSource>(head, node(tokens[1]), node(tokens[2]),
                                     parse_stimulus(tokens, i, line_no));
          ++created;
          break;
        }
        case 'i': {
          need(4, "current source");
          std::size_t i = 3;
          circuit.add<CurrentSource>(head, node(tokens[1]), node(tokens[2]),
                                     parse_stimulus(tokens, i, line_no));
          ++created;
          break;
        }
        case 'd': {
          need(3, "diode");
          const auto opts = parse_options(tokens, 3, line_no);
          DiodeParams dp;
          dp.saturation_current = opt_value(opts, "is", dp.saturation_current, line_no);
          dp.emission_coeff = opt_value(opts, "n", dp.emission_coeff, line_no);
          dp.breakdown_voltage = opt_value(opts, "bv", 0.0, line_no);
          circuit.add<Diode>(head, node(tokens[1]), node(tokens[2]), dp);
          ++created;
          break;
        }
        case 'm': {
          need(6, "mosfet");
          MosParams mp;
          const std::string& model = tokens[5];
          if (model == "nmos") {
            mp.type = MosType::kNmos;
          } else if (model == "pmos") {
            mp.type = MosType::kPmos;
            mp.kp = 70e-6;
          } else {
            throw NetlistError(line_no, "unknown MOSFET model '" + model + "'");
          }
          const auto opts = parse_options(tokens, 6, line_no);
          mp.w = opt_value(opts, "w", mp.w, line_no);
          mp.l = opt_value(opts, "l", mp.l, line_no);
          mp.vt0 = opt_value(opts, "vt0", mp.vt0, line_no);
          mp.kp = opt_value(opts, "kp", mp.kp, line_no);
          circuit.add<Mosfet>(head, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                              node(tokens[4]), mp);
          ++created;
          break;
        }
        case 's': {
          need(5, "switch");
          const auto opts = parse_options(tokens, 5, line_no);
          SwitchParams sp;
          sp.r_on = opt_value(opts, "ron", sp.r_on, line_no);
          sp.r_off = opt_value(opts, "roff", sp.r_off, line_no);
          sp.v_on = opt_value(opts, "von", sp.v_on, line_no);
          sp.v_off = opt_value(opts, "voff", sp.v_off, line_no);
          circuit.add<SmoothSwitch>(head, node(tokens[1]), node(tokens[2]),
                                    node(tokens[3]), node(tokens[4]), sp);
          ++created;
          break;
        }
        case 'e': {
          need(6, "vcvs");
          circuit.add<Vcvs>(head, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                            node(tokens[4]),
                            require_value(tokens[5], line_no, "gain"));
          ++created;
          break;
        }
        case 'g': {
          need(6, "vccs");
          circuit.add<Vccs>(head, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                            node(tokens[4]),
                            require_value(tokens[5], line_no, "transconductance"));
          ++created;
          break;
        }
        case 'x': {
          need(5, "subcircuit");
          if (tokens[4] != "opamp") {
            throw NetlistError(line_no, "unknown subcircuit '" + tokens[4] + "'");
          }
          const auto opts = parse_options(tokens, 5, line_no);
          OpAmpParams op;
          op.gain = opt_value(opts, "gain", op.gain, line_no);
          op.v_out_min = opt_value(opts, "vmin", op.v_out_min, line_no);
          op.v_out_max = opt_value(opts, "vmax", op.v_out_max, line_no);
          circuit.add<OpAmp>(head, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                             op);
          ++created;
          break;
        }
        default:
          throw NetlistError(line_no, "unknown element '" + head + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw NetlistError(line_no, e.what());
    }
  }

  // Resolve couplings: each K-line consumes two staged inductors.
  for (const auto& k : couplings) {
    InductorRecord* la = nullptr;
    InductorRecord* lb = nullptr;
    for (auto& rec : inductors) {
      if (rec.name == k.la) la = &rec;
      if (rec.name == k.lb) lb = &rec;
    }
    if (la == nullptr || lb == nullptr) {
      throw NetlistError(k.line, "coupling references unknown inductor");
    }
    if (la->consumed || lb->consumed) {
      throw NetlistError(k.line, "inductor already coupled");
    }
    la->consumed = true;
    lb->consumed = true;
    circuit.add<CoupledInductors>(k.name, la->a, la->b, lb->a, lb->b, la->value,
                                  lb->value, k.k, la->esr, lb->esr);
    ++created;
  }
  for (const auto& rec : inductors) {
    if (rec.consumed) continue;
    circuit.add<Inductor>(rec.name, rec.a, rec.b, rec.value, rec.esr, rec.ic);
    ++created;
  }
  return created;
}

}  // namespace ironic::spice
