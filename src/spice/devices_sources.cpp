#include "src/spice/devices_sources.hpp"

namespace ironic::spice {

// ------------------------------------------------------------ VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId a, NodeId b, Waveform waveform)
    : Device(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {}

void VoltageSource::setup(Circuit& ckt) { branch_ = ckt.allocate_branch(name()); }

void VoltageSource::stamp(StampContext& ctx) {
  add_a(ctx, a_, branch_, 1.0);
  add_a(ctx, b_, branch_, -1.0);
  add_a(ctx, branch_, a_, 1.0);
  add_a(ctx, branch_, b_, -1.0);
  const double value = waveform_(ctx.dc ? 0.0 : ctx.time) * ctx.source_scale;
  add_rhs(ctx, branch_, value);
}

void VoltageSource::stamp_ac(AcStampContext& ctx) const {
  ac_add(ctx, a_, branch_, {1.0, 0.0});
  ac_add(ctx, b_, branch_, {-1.0, 0.0});
  ac_add(ctx, branch_, a_, {1.0, 0.0});
  ac_add(ctx, branch_, b_, {-1.0, 0.0});
  ac_rhs(ctx, branch_, std::polar(ac_magnitude_, ac_phase_));
}

void VoltageSource::collect_breakpoints(double t0, double t1,
                                        std::vector<double>& out) const {
  waveform_.breakpoints(t0, t1, out);
}

// ------------------------------------------------------------ CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, Waveform waveform)
    : Device(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {}

void CurrentSource::stamp(StampContext& ctx) {
  const double value = waveform_(ctx.dc ? 0.0 : ctx.time) * ctx.source_scale;
  stamp_current(ctx, a_, b_, value);
}

void CurrentSource::stamp_ac(AcStampContext& ctx) const {
  const linalg::Complex i = std::polar(ac_magnitude_, ac_phase_);
  ac_rhs(ctx, a_, -i);
  ac_rhs(ctx, b_, i);
}

void CurrentSource::collect_breakpoints(double t0, double t1,
                                        std::vector<double>& out) const {
  waveform_.breakpoints(t0, t1, out);
}

// --------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double gain)
    : Device(std::move(name)), a_(a), b_(b), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::setup(Circuit& ckt) { branch_ = ckt.allocate_branch(name()); }

void Vcvs::stamp(StampContext& ctx) {
  add_a(ctx, a_, branch_, 1.0);
  add_a(ctx, b_, branch_, -1.0);
  // v(a) - v(b) - gain (v(cp) - v(cn)) = 0
  add_a(ctx, branch_, a_, 1.0);
  add_a(ctx, branch_, b_, -1.0);
  add_a(ctx, branch_, cp_, -gain_);
  add_a(ctx, branch_, cn_, gain_);
}

void Vcvs::stamp_ac(AcStampContext& ctx) const {
  ac_add(ctx, a_, branch_, {1.0, 0.0});
  ac_add(ctx, b_, branch_, {-1.0, 0.0});
  ac_add(ctx, branch_, a_, {1.0, 0.0});
  ac_add(ctx, branch_, b_, {-1.0, 0.0});
  ac_add(ctx, branch_, cp_, {-gain_, 0.0});
  ac_add(ctx, branch_, cn_, {gain_, 0.0});
}

// --------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn,
           double transconductance)
    : Device(std::move(name)), a_(a), b_(b), cp_(cp), cn_(cn), gm_(transconductance) {}

void Vccs::stamp(StampContext& ctx) {
  // Current a -> b equals gm (v(cp) - v(cn)).
  add_a(ctx, a_, cp_, gm_);
  add_a(ctx, a_, cn_, -gm_);
  add_a(ctx, b_, cp_, -gm_);
  add_a(ctx, b_, cn_, gm_);
}

void Vccs::stamp_ac(AcStampContext& ctx) const {
  ac_add(ctx, a_, cp_, {gm_, 0.0});
  ac_add(ctx, a_, cn_, {-gm_, 0.0});
  ac_add(ctx, b_, cp_, {-gm_, 0.0});
  ac_add(ctx, b_, cn_, {gm_, 0.0});
}


// ------------------------------------------------------------- reflection

DeviceInfo VoltageSource::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kVoltageSource;
  d.terminals = {{"+", a_, TerminalDc::kConducting}, {"-", b_, TerminalDc::kConducting}};
  d.rigid_pairs = {{0, 1}};
  d.has_source_range = waveform_.value_range(d.source_min, d.source_max);
  d.stimulus_timescale = waveform_.min_timescale();
  return d;
}

DeviceInfo CurrentSource::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kCurrentSource;
  // A current source forces a branch current but establishes no DC path:
  // the node voltages on either side are set entirely by the rest of the
  // circuit, so for connectivity purposes its terminals are blocking.
  d.terminals = {{"+", a_, TerminalDc::kBlocking}, {"-", b_, TerminalDc::kBlocking}};
  d.has_source_range = waveform_.value_range(d.source_min, d.source_max);
  d.stimulus_timescale = waveform_.min_timescale();
  return d;
}

DeviceInfo Vcvs::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kVcvs;
  d.terminals = {{"+", a_, TerminalDc::kConducting},
                 {"-", b_, TerminalDc::kConducting},
                 {"cp", cp_, TerminalDc::kSensing},
                 {"cn", cn_, TerminalDc::kSensing}};
  d.dc_groups = {{0, 1}};
  d.rigid_pairs = {{0, 1}};
  d.has_gain = true;
  d.gain = gain_;
  return d;
}

DeviceInfo Vccs::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kVccs;
  d.terminals = {{"+", a_, TerminalDc::kBlocking},
                 {"-", b_, TerminalDc::kBlocking},
                 {"cp", cp_, TerminalDc::kSensing},
                 {"cn", cn_, TerminalDc::kSensing}};
  d.has_gain = true;
  d.gain = gm_;
  return d;
}

}  // namespace ironic::spice
