// Static circuit verification: the netlist linter.
//
// `lint()` walks a Circuit's device reflection data (Device::info /
// Device::check_params) and reports modeling mistakes *before* any matrix
// is assembled: floating nodes, ideal-voltage loops, current sources with
// no return path, shorted or dangling devices, out-of-range model
// parameters, and unit-suspicious magnitudes. Errors are conditions that
// make the MNA system singular or meaningless (the simulation would
// diverge or silently produce garbage); warnings are suspicious but
// simulable.
//
// `validate()` is the engine-facing wrapper: it throws
// CircuitValidationError when any error-severity diagnostic fires.
// solve_dc() and run_transient() call it by default (see
// DcOptions::validate / TransientOptions::validate), turning "Newton
// mysteriously failed to converge" into a named, located diagnostic.
//
// Rule catalog (rule_id -> meaning):
//   lint.ground-missing    no device terminal touches node 0 at all
//   lint.dangling-node     a named node no device terminal references
//   lint.dangling-terminal a conducting terminal is the only connection
//                          to its node (the branch dead-ends)
//   lint.no-dc-path        node has no DC-conducting path to ground
//                          (only gshunt keeps the matrix regular)
//   lint.current-cutset    current source drives a component with no DC
//                          return path (error in DC: v -> I/gshunt)
//   lint.voltage-loop      cycle of ideal-voltage branches (V/E/opamp
//                          outputs) -- the MNA matrix is singular
//   lint.inductor-loop     cycle closed only through ideal (ESR-free)
//                          inductor windings -- a DC short circuit
//                          (error when linting for DC, warning for
//                          transient where companion models regularize)
//   lint.shorted-device    both ends of a two-terminal device on one node
//   lint.duplicate-name    two device names collide case-insensitively
//   lint.bad-value         model parameter breaks the formulation
//                          (non-positive R/C/L, k >= 1, r_on <= 0, ...)
//   lint.param-range       model parameter is physically implausible
//   lint.magnitude         R/C/L magnitude far outside the plausible
//                          band for this domain (suspected unit-suffix
//                          mistake, e.g. 150 MOhm for a 150 Ohm load)
//   lint.parse-error       (CLI only) the netlist failed to parse
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/spice/circuit.hpp"

namespace ironic::spice {

enum class Severity { kInfo, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule_id;  // "lint.<rule>"
  std::string device;   // offending device name ("" for node-level rules)
  std::string node;     // offending node name ("" for device-level rules)
  std::string message;

  // "error[lint.voltage-loop] V2 (node 'in'): ..." -- one line, no \n.
  std::string to_string() const;
};

struct LintOptions {
  // Lint for a DC operating-point analysis: inductor loops and
  // current-source cutsets become errors (they are singular/divergent at
  // DC but integrable in a transient).
  bool dc_context = false;
  // Magnitude plausibility heuristics (lint.magnitude). On by default;
  // exotic-but-deliberate designs can switch them off.
  bool magnitude_checks = true;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t errors() const;
  std::size_t warnings() const;
  bool ok() const { return errors() == 0; }
  bool clean() const { return diagnostics.empty(); }

  // Multi-line human-readable report, one diagnostic per line plus a
  // summary line; "" when clean.
  std::string to_text() const;
  // JSON object: {"errors":N,"warnings":N,"diagnostics":[{...},...]}.
  std::string to_json() const;
};

// Run every rule over `circuit`. Does not require finalize(); never
// throws on lintable input.
LintReport lint(const Circuit& circuit, const LintOptions& options = {});

// Thrown by validate() (and therefore by solve_dc/run_transient) when the
// linter finds error-severity diagnostics. what() carries the full text
// report; `report` keeps the structured diagnostics.
class CircuitValidationError : public std::invalid_argument {
 public:
  explicit CircuitValidationError(LintReport r);
  const LintReport report;
};

// Engine-facing gate: lint and throw CircuitValidationError if any error
// diagnostic fires. Returns the (possibly warning-bearing) report
// otherwise so callers can surface warnings.
LintReport validate(const Circuit& circuit, const LintOptions& options = {});

}  // namespace ironic::spice
