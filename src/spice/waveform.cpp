#include "src/spice/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/util/constants.hpp"

namespace ironic::spice {
namespace {

using constants::kTwoPi;

class DcImpl final : public WaveformImpl {
 public:
  explicit DcImpl(double v) : v_(v) {}
  double value(double) const override { return v_; }

  bool value_range(double& lo, double& hi) const override {
    lo = hi = v_;
    return true;
  }

 private:
  double v_;
};

class SineImpl final : public WaveformImpl {
 public:
  SineImpl(double amplitude, double frequency, double offset, double delay, double phase)
      : amplitude_(amplitude),
        frequency_(frequency),
        offset_(offset),
        delay_(delay),
        phase_(phase) {}

  double value(double t) const override {
    if (t < delay_) return offset_;
    return offset_ + amplitude_ * std::sin(kTwoPi * frequency_ * (t - delay_) + phase_);
  }

  void breakpoints(double t0, double t1, std::vector<double>& out) const override {
    if (delay_ > t0 && delay_ < t1) out.push_back(delay_);
  }

  bool value_range(double& lo, double& hi) const override {
    // The pre-delay value is offset_, already inside the band.
    lo = offset_ - std::abs(amplitude_);
    hi = offset_ + std::abs(amplitude_);
    return true;
  }

  double min_timescale() const override {
    return frequency_ > 0.0 ? 1.0 / frequency_ : 0.0;
  }

 private:
  double amplitude_, frequency_, offset_, delay_, phase_;
};

class PulseImpl final : public WaveformImpl {
 public:
  PulseImpl(double v1, double v2, double delay, double rise, double fall, double width,
            double period)
      : v1_(v1), v2_(v2), delay_(delay), rise_(rise), fall_(fall), width_(width),
        period_(period) {
    if (rise_ <= 0.0) rise_ = 1e-12;
    if (fall_ <= 0.0) fall_ = 1e-12;
  }

  double value(double t) const override {
    if (t < delay_) return v1_;
    double local = t - delay_;
    if (period_ > 0.0) local = std::fmod(local, period_);
    if (local < rise_) return v1_ + (v2_ - v1_) * (local / rise_);
    if (local < rise_ + width_) return v2_;
    if (local < rise_ + width_ + fall_) {
      return v2_ + (v1_ - v2_) * ((local - rise_ - width_) / fall_);
    }
    return v1_;
  }

  void breakpoints(double t0, double t1, std::vector<double>& out) const override {
    // Corners of each pulse: start, top-start, top-end, bottom-start.
    if (period_ <= 0.0) {
      for (double corner : {delay_, delay_ + rise_, delay_ + rise_ + width_,
                            delay_ + rise_ + width_ + fall_}) {
        if (corner > t0 && corner < t1) out.push_back(corner);
      }
      return;
    }
    const double first_cycle =
        std::floor(std::max(0.0, t0 - delay_) / period_);
    for (double k = first_cycle;; k += 1.0) {
      const double base = delay_ + k * period_;
      if (base > t1) break;
      for (double corner : {base, base + rise_, base + rise_ + width_,
                            base + rise_ + width_ + fall_}) {
        if (corner > t0 && corner < t1) out.push_back(corner);
      }
    }
  }

  bool value_range(double& lo, double& hi) const override {
    lo = std::min(v1_, v2_);
    hi = std::max(v1_, v2_);
    return true;
  }

  double min_timescale() const override {
    double t = std::min(rise_, fall_);
    if (width_ > 0.0) t = std::min(t, width_);
    if (period_ > 0.0) t = std::min(t, period_);
    return t;
  }

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

class PwlImpl final : public WaveformImpl {
 public:
  explicit PwlImpl(util::PiecewiseLinear pwl) : pwl_(std::move(pwl)) {}

  double value(double t) const override { return pwl_(t); }

  void breakpoints(double t0, double t1, std::vector<double>& out) const override {
    for (double t : pwl_.xs()) {
      if (t > t0 && t < t1) out.push_back(t);
    }
  }

  bool value_range(double& lo, double& hi) const override {
    const auto ys = pwl_.ys();
    if (ys.empty()) return false;
    lo = hi = ys[0];
    for (double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    return true;
  }

  double min_timescale() const override {
    const auto xs = pwl_.xs();
    double dt = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      const double gap = xs[i] - xs[i - 1];
      if (gap > 0.0 && (dt == 0.0 || gap < dt)) dt = gap;
    }
    return dt;
  }

 private:
  util::PiecewiseLinear pwl_;
};

class ModulatedSineImpl final : public WaveformImpl {
 public:
  ModulatedSineImpl(double frequency, util::PiecewiseLinear envelope, double phase)
      : frequency_(frequency), envelope_(std::move(envelope)), phase_(phase) {}

  double value(double t) const override {
    return envelope_(t) * std::sin(kTwoPi * frequency_ * t + phase_);
  }

  void breakpoints(double t0, double t1, std::vector<double>& out) const override {
    for (double t : envelope_.xs()) {
      if (t > t0 && t < t1) out.push_back(t);
    }
  }

  bool value_range(double& lo, double& hi) const override {
    const auto ys = envelope_.ys();
    if (ys.empty()) return false;
    double peak = 0.0;
    for (double y : ys) peak = std::max(peak, std::abs(y));
    lo = -peak;
    hi = peak;
    return true;
  }

  double min_timescale() const override {
    return frequency_ > 0.0 ? 1.0 / frequency_ : 0.0;
  }

 private:
  double frequency_;
  util::PiecewiseLinear envelope_;
  double phase_;
};

class CustomImpl final : public WaveformImpl {
 public:
  CustomImpl(std::function<double(double)> fn, std::vector<double> bps)
      : fn_(std::move(fn)), bps_(std::move(bps)) {
    std::sort(bps_.begin(), bps_.end());
  }

  double value(double t) const override { return fn_(t); }

  void breakpoints(double t0, double t1, std::vector<double>& out) const override {
    for (double t : bps_) {
      if (t > t0 && t < t1) out.push_back(t);
    }
  }

  double min_timescale() const override {
    double dt = 0.0;
    for (std::size_t i = 1; i < bps_.size(); ++i) {
      const double gap = bps_[i] - bps_[i - 1];
      if (gap > 0.0 && (dt == 0.0 || gap < dt)) dt = gap;
    }
    return dt;
  }

 private:
  std::function<double(double)> fn_;
  std::vector<double> bps_;
};

}  // namespace

void WaveformImpl::breakpoints(double, double, std::vector<double>&) const {}

bool WaveformImpl::value_range(double&, double&) const { return false; }

double WaveformImpl::min_timescale() const { return 0.0; }

Waveform::Waveform() : impl_(std::make_shared<DcImpl>(0.0)) {}

Waveform Waveform::dc(double value) {
  return Waveform(std::make_shared<DcImpl>(value));
}

Waveform Waveform::sine(double amplitude, double frequency, double offset, double delay,
                        double phase_rad) {
  return Waveform(std::make_shared<SineImpl>(amplitude, frequency, offset, delay, phase_rad));
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise, double fall,
                         double width, double period) {
  return Waveform(std::make_shared<PulseImpl>(v1, v2, delay, rise, fall, width, period));
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  return Waveform(std::make_shared<PwlImpl>(
      util::PiecewiseLinear(std::move(times), std::move(values))));
}

Waveform Waveform::modulated_sine(double frequency, util::PiecewiseLinear envelope,
                                  double phase_rad) {
  return Waveform(
      std::make_shared<ModulatedSineImpl>(frequency, std::move(envelope), phase_rad));
}

Waveform Waveform::custom(std::function<double(double)> fn,
                          std::vector<double> breakpoints) {
  if (!fn) throw std::invalid_argument("Waveform::custom: null function");
  return Waveform(std::make_shared<CustomImpl>(std::move(fn), std::move(breakpoints)));
}

Waveform square_clock(double v_lo, double v_hi, double frequency, double delay,
                      double edge_time) {
  const double period = 1.0 / frequency;
  return Waveform::pulse(v_lo, v_hi, delay, edge_time, edge_time,
                         period / 2.0 - edge_time, period);
}

}  // namespace ironic::spice
