// Device abstraction for the MNA engine.
//
// Every circuit element implements `stamp`, contributing its linearized
// companion model to the system A x = rhs for the current Newton iterate.
// The unknown vector x holds node voltages first, then branch currents
// (voltage sources, inductors) in setup order.
#pragma once

#include <complex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/linalg/complex_matrix.hpp"
#include "src/linalg/matrix.hpp"
#include "src/linalg/solver.hpp"

namespace ironic::spice {

// Node handle. kGround is the reference node and has no matrix row.
using NodeId = int;
constexpr NodeId kGround = -1;

enum class Integrator { kBackwardEuler, kTrapezoidal };

class Circuit;

// --- device reflection ------------------------------------------------------
//
// Devices describe their own topology so passes that are not analyses —
// the netlist linter above all — can reason about connectivity without
// growing a friend list or parsing stamps. `DeviceInfo` is a snapshot:
// cheap to build, safe to cache, and independent of finalize().

enum class DeviceKind {
  kResistor,
  kCapacitor,
  kInductor,
  kCoupledInductors,
  kVoltageSource,
  kCurrentSource,
  kVcvs,
  kVccs,
  kDiode,
  kMosfet,
  kSwitch,
  kOpAmp,
  kOther,
};

const char* device_kind_name(DeviceKind kind);

// How a terminal behaves at DC, for connectivity analysis.
enum class TerminalDc {
  kConducting,  // part of a DC-conducting path (R, L, V, D, switch, channel)
  kBlocking,    // open at DC (capacitor plates)
  kSensing,     // draws no current, only senses voltage (gates, control pins)
};

struct Terminal {
  std::string label;  // "+", "-", "d", "g", "cp", ...
  NodeId node = kGround;
  TerminalDc dc = TerminalDc::kConducting;
};

struct DeviceInfo {
  DeviceKind kind = DeviceKind::kOther;
  std::vector<Terminal> terminals;
  // Primary scalar value (resistance, capacitance, ...); meaningful only
  // when has_value is true.
  double value = 0.0;
  bool has_value = false;
  // Groups of terminal indices between which DC current can flow inside
  // the device (a transformer has two separate groups; a MOSFET one).
  // Empty means "all kConducting terminals form one group".
  std::vector<std::vector<std::size_t>> dc_groups;
  // Pairs of terminal indices that form an ideal-voltage branch (voltage
  // sources, VCVS outputs, ESR-free inductor windings at DC): edges whose
  // voltage is fixed by the device, hence the raw material of V-loops.
  std::vector<std::pair<std::size_t, std::size_t>> rigid_pairs;
  // Terminal indices whose voltage the device pins relative to ground
  // (the op-amp output). Rigid edges to the reference node.
  std::vector<std::size_t> rigid_to_ground;

  // --- static-analysis annotations (src/spice/analysis) -------------------
  // Stimulus range for independent sources: the waveform's static
  // [source_min, source_max] band, valid when has_source_range.
  bool has_source_range = false;
  double source_min = 0.0;
  double source_max = 0.0;
  // Smallest intrinsic stimulus timescale (period, edge, segment); 0 when
  // the device carries no time-varying stimulus.
  double stimulus_timescale = 0.0;
  // Controlled-source coefficient (VCVS voltage gain, VCCS
  // transconductance), valid when has_gain.
  bool has_gain = false;
  double gain = 0.0;
  // Output rail clamp (op-amp [v_out_min, v_out_max]), valid when
  // has_output_range.
  bool has_output_range = false;
  double output_min = 0.0;
  double output_max = 0.0;
  // Maximum safe terminal-to-terminal voltage magnitude (diode reverse
  // breakdown). 0 means unrated.
  double voltage_rating = 0.0;
};

// Everything a device needs to stamp one Newton iteration. Matrix
// entries accumulate into the pluggable solver (dense or sparse); the
// sparse backend caches the stamp-call sequence, so devices should go
// through the add_a/stamp_* helpers and need not — must not — try to
// write structure themselves (see DESIGN.md §11 for the slot-cache
// contract).
struct StampContext {
  linalg::LinearSolver& a;
  std::vector<double>& rhs;
  std::span<const double> x;  // current Newton iterate (full unknown vector)
  double time = 0.0;          // time point being solved
  double dt = 0.0;            // step size; <= 0 in DC analysis
  Integrator integrator = Integrator::kTrapezoidal;
  bool dc = false;            // true during DC operating-point analysis
  double gmin = 1e-12;        // minimum junction conductance
  double source_scale = 1.0;  // < 1 only during DC source stepping
  // Set by devices when junction/step limiting altered an evaluation
  // voltage; the Newton loop refuses to declare convergence while any
  // device is still walking its limited variables toward the iterate.
  bool limited = false;

  // Voltage of `node` in the current iterate (0 for ground).
  double v(NodeId node) const { return node == kGround ? 0.0 : x[static_cast<std::size_t>(node)]; }
  // Value of unknown `index` (node or branch).
  double unknown(int index) const { return x[static_cast<std::size_t>(index)]; }
};

// Small-signal (AC) stamping context: the complex MNA system at one
// angular frequency, linearized around the DC operating point `op`.
struct AcStampContext {
  linalg::ComplexLinearSolver& a;
  linalg::CVector& rhs;
  std::span<const double> op;  // DC operating point (full unknown vector)
  double omega = 0.0;

  double v_op(NodeId node) const {
    return node == kGround ? 0.0 : op[static_cast<std::size_t>(node)];
  }
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  // Called once per analysis, after all devices exist; allocate branch
  // unknowns here via Circuit::allocate_branch.
  virtual void setup(Circuit&) {}

  // Contribute the linearized companion model at the current iterate.
  virtual void stamp(StampContext& ctx) = 0;

  // Called when the engine begins a new time point (before Newton);
  // devices reset per-iteration limiting state here.
  virtual void start_step(double /*time*/, double /*dt*/) {}

  // Called when a time point is accepted; devices update integration state.
  virtual void accept_step(std::span<const double> /*x*/, double /*time*/, double /*dt*/,
                           Integrator /*integrator*/) {}

  // Called once before transient stepping with the initial solution
  // (DC operating point, or zeros under use-initial-conditions).
  virtual void initialize(std::span<const double> /*x0*/) {}

  // Append stimulus breakpoints in [t0, t1].
  virtual void collect_breakpoints(double /*t0*/, double /*t1*/,
                                   std::vector<double>& /*out*/) const {}

  // True if the device's stamp depends on the iterate (forces Newton).
  virtual bool nonlinear() const { return false; }

  // --- checkpoint/restart ---------------------------------------------------
  // Serialize the device's cross-step integration state (companion-model
  // history) by appending doubles to `out`. Stateless devices — anything
  // whose per-step state is rebuilt in start_step — keep the empty
  // default. restore_state must consume exactly the doubles save_state
  // produced and return that count; the engine concatenates the blobs in
  // device order (see spice::TransientCheckpoint).
  virtual void save_state(std::vector<double>& /*out*/) const {}
  virtual std::size_t restore_state(std::span<const double> /*in*/) { return 0; }

  // Topology/value snapshot for static passes (lint). The default is an
  // opaque device with no terminals; every shipped device overrides this.
  virtual DeviceInfo info() const { return {}; }

  // Per-device model-parameter sanity check: append human-readable
  // complaints (without device name; the linter adds it). `errors` are
  // values that break the MNA formulation or integrator; `warnings` are
  // physically implausible but simulable.
  virtual void check_params(std::vector<std::string>& /*errors*/,
                            std::vector<std::string>& /*warnings*/) const {}

  // Contribute the small-signal model at the operating point. Devices
  // without an AC model must override nothing — the engine reports them.
  virtual void stamp_ac(AcStampContext&) const {
    throw std::logic_error("device '" + name_ + "' has no small-signal (AC) model");
  }

 protected:
  // --- ground-aware stamping helpers -------------------------------------
  static void add_a(StampContext& ctx, int row, int col, double value) {
    if (row < 0 || col < 0) return;
    ctx.a.add(row, col, value);
  }
  static void add_rhs(StampContext& ctx, int row, double value) {
    if (row < 0) return;
    ctx.rhs[static_cast<std::size_t>(row)] += value;
  }
  // Stamp a conductance g between nodes a and b.
  static void stamp_conductance(StampContext& ctx, NodeId a, NodeId b, double g) {
    add_a(ctx, a, a, g);
    add_a(ctx, b, b, g);
    add_a(ctx, a, b, -g);
    add_a(ctx, b, a, -g);
  }
  // Stamp a constant current flowing from a to b (through the device).
  static void stamp_current(StampContext& ctx, NodeId a, NodeId b, double i) {
    add_rhs(ctx, a, -i);
    add_rhs(ctx, b, i);
  }

  // --- complex (AC) stamping helpers --------------------------------------
  static void ac_add(AcStampContext& ctx, int row, int col, linalg::Complex value) {
    if (row < 0 || col < 0) return;
    ctx.a.add(row, col, value);
  }
  static void ac_rhs(AcStampContext& ctx, int row, linalg::Complex value) {
    if (row < 0) return;
    ctx.rhs[static_cast<std::size_t>(row)] += value;
  }
  static void ac_admittance(AcStampContext& ctx, NodeId a, NodeId b,
                            linalg::Complex y) {
    ac_add(ctx, a, a, y);
    ac_add(ctx, b, b, y);
    ac_add(ctx, a, b, -y);
    ac_add(ctx, b, a, -y);
  }

 private:
  std::string name_;
};

}  // namespace ironic::spice
