// Independent and linear controlled sources.
#pragma once

#include "src/spice/circuit.hpp"
#include "src/spice/device.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::spice {

// Ideal independent voltage source; positive terminal `a`.
// The branch current ("i(<name>)") flows from a through the source to b,
// so a source delivering power to the circuit shows a negative current.
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId a, NodeId b, Waveform waveform);
  void setup(Circuit& ckt) override;
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  // AC analysis stimulus: phasor magnitude/phase (0 -> AC short).
  void set_ac(double magnitude, double phase_rad = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_ = phase_rad;
  }
  void collect_breakpoints(double t0, double t1, std::vector<double>& out) const override;
  int branch_index() const { return branch_; }
  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  const Waveform& waveform() const { return waveform_; }
  DeviceInfo info() const override;

 private:
  NodeId a_, b_;
  Waveform waveform_;
  int branch_ = -1;
  double ac_magnitude_ = 0.0;
  double ac_phase_ = 0.0;
};

// Ideal independent current source; current flows from a to b through it.
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId a, NodeId b, Waveform waveform);
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void set_ac(double magnitude, double phase_rad = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_ = phase_rad;
  }
  void collect_breakpoints(double t0, double t1, std::vector<double>& out) const override;
  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  const Waveform& waveform() const { return waveform_; }
  DeviceInfo info() const override;

 private:
  NodeId a_, b_;
  Waveform waveform_;
  double ac_magnitude_ = 0.0;
  double ac_phase_ = 0.0;
};

// Linear voltage-controlled voltage source: v(a,b) = gain * v(cp,cn).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, double gain);
  void setup(Circuit& ckt) override;
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  DeviceInfo info() const override;

 private:
  NodeId a_, b_, cp_, cn_;
  double gain_;
  int branch_ = -1;
};

// Linear voltage-controlled current source: i(a->b) = gm * v(cp,cn).
class Vccs final : public Device {
 public:
  Vccs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn,
       double transconductance);
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  DeviceInfo info() const override;

 private:
  NodeId a_, b_, cp_, cn_;
  double gm_;
};

}  // namespace ironic::spice
