#include "src/spice/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "src/linalg/solver.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/spice/lint.hpp"
#include "src/obs/trace.hpp"
#include "src/util/log.hpp"

namespace ironic::spice {
namespace {

std::atomic<linalg::SolverKind> g_default_solver_kind{linalg::SolverKind::kAuto};

// Fallback nominal step when the caller leaves dt_max at auto (0) and the
// circuit carries no timescale-analysis hint. Matches the historical
// TransientOptions default.
constexpr double kDefaultDtMax = 1e-6;

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;                     // Newton iterations attempted
  std::uint64_t factorizations = 0;       // numeric LU factorizations performed
  std::uint64_t solves = 0;               // triangular solves (== iterations)
  std::uint64_t lu_ns = 0;                // wall time spent factoring + solving
};

// Cached handles into the metrics registry for the engine's hot paths;
// resolved once, reused by every solve in the process.
struct EngineMetrics {
  obs::Counter& dc_solves;
  obs::Counter& dc_newton_iterations;
  obs::Counter& dc_gmin_escalations;
  obs::Counter& dc_source_escalations;
  obs::Counter& dc_failures;
  obs::Counter& tr_runs;
  obs::Counter& tr_accepted_steps;
  obs::Counter& tr_rejected_steps;
  obs::Counter& tr_lte_rejections;
  obs::Counter& tr_newton_iterations;
  obs::Counter& tr_factorizations;
  obs::Counter& tr_solves;
  obs::Counter& tr_breakpoint_hits;
  obs::Counter& tr_checkpoints;
  obs::Counter& tr_resumes;
  obs::Counter& tr_lu_ns;       // time inside LU factor+solve (transient)
  obs::Counter& dc_lu_ns;
  // Solver-layer counters, fed with per-run deltas of the backend's
  // SolverStats (the backend outlives runs via the circuit cache).
  obs::Counter& sv_factorizations;
  obs::Counter& sv_refactorizations;
  obs::Counter& sv_factor_skips;
  obs::Counter& sv_solves;
  obs::Counter& sv_pattern_builds;
  obs::Counter& sv_pattern_reuses;
  obs::Gauge& sv_nnz;
  obs::Gauge& sv_factor_nnz;
  obs::Gauge& tr_last_steps_per_sec;
  obs::Histogram& tr_newton_iters_per_step;

  static EngineMetrics& get() {
    static EngineMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return EngineMetrics{
          r.counter("spice.dc.solves"),
          r.counter("spice.dc.newton_iterations"),
          r.counter("spice.dc.gmin_escalations"),
          r.counter("spice.dc.source_escalations"),
          r.counter("spice.dc.failures"),
          r.counter("spice.transient.runs"),
          r.counter("spice.transient.accepted_steps"),
          r.counter("spice.transient.rejected_steps"),
          r.counter("spice.transient.lte_rejections"),
          r.counter("spice.transient.newton_iterations"),
          r.counter("spice.transient.factorizations"),
          r.counter("spice.transient.solves"),
          r.counter("spice.transient.breakpoint_hits"),
          r.counter("spice.transient.checkpoints"),
          r.counter("spice.transient.resumes"),
          r.counter("spice.transient.lu_ns"),
          r.counter("spice.dc.lu_ns"),
          r.counter("spice.solver.factorizations"),
          r.counter("spice.solver.refactorizations"),
          r.counter("spice.solver.factor_skips"),
          r.counter("spice.solver.solves"),
          r.counter("spice.solver.pattern_builds"),
          r.counter("spice.solver.pattern_reuses"),
          r.gauge("spice.solver.nnz"),
          r.gauge("spice.solver.factor_nnz"),
          r.gauge("spice.transient.last_steps_per_sec"),
          r.histogram("spice.transient.newton_iters_per_step",
                      {1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50, 100, 150}),
      };
    }();
    return m;
  }
};

// One Newton solve of the (possibly nonlinear) MNA system at a fixed
// time point. `x` is both the initial guess and the result. The solver
// persists across calls (circuit-owned), so its cached stamp slots and
// symbolic factorization carry over between iterations and time steps.
NewtonOutcome newton_solve(Circuit& circuit, linalg::LinearSolver& solver,
                           std::vector<double>& x, double time, double dt,
                           Integrator integrator, bool dc, const NewtonOptions& opts,
                           double source_scale, double extra_gshunt) {
  PROF_ZONE("spice.newton");
  const std::size_t n = circuit.num_unknowns();
  const std::size_t num_nodes = circuit.num_nodes();
  std::vector<double> rhs(n, 0.0);
  std::vector<double> x_new(n, 0.0);
  NewtonOutcome outcome;
  const linalg::SolverStats entry_stats = solver.stats();

  bool any_nonlinear = false;
  for (const auto& dev : circuit.devices()) any_nonlinear |= dev->nonlinear();

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++outcome.iterations;
    bool limiting_active = false;
    {
      PROF_ZONE("spice.stamp");
      solver.begin_assembly();
      std::fill(rhs.begin(), rhs.end(), 0.0);

      StampContext ctx{solver, rhs, x, time, dt, integrator, dc, opts.gmin, source_scale, false};
      for (const auto& dev : circuit.devices()) dev->stamp(ctx);
      limiting_active = ctx.limited;

      // Node-to-ground leak. Stamped even when it is 0.0 so the node
      // diagonals belong to the sparse pattern unconditionally: the gmin
      // ladder reaching zero then changes values, never structure.
      const double gshunt = opts.gshunt + extra_gshunt;
      for (std::size_t i = 0; i < num_nodes; ++i) {
        solver.add(static_cast<int>(i), static_cast<int>(i), gshunt);
      }
    }

    std::chrono::steady_clock::time_point lu_start;
    if constexpr (obs::kEnabled) lu_start = std::chrono::steady_clock::now();
    bool singular = false;
    try {
      {
        PROF_ZONE("spice.lu_factor");
        solver.factor();
      }
      x_new = rhs;
      {
        PROF_ZONE("spice.lu_solve");
        solver.solve_in_place(x_new);
      }
    } catch (const linalg::SingularMatrixError&) {
      singular = true;
    }
    if constexpr (obs::kEnabled) {
      outcome.lu_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - lu_start)
              .count());
    }
    if (singular) break;  // not converged

    // Convergence check on the update.
    bool converged = true;
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = std::abs(x_new[i] - x[i]);
      max_delta = std::max(max_delta, delta);
      const double magnitude = std::max(std::abs(x_new[i]), std::abs(x[i]));
      const double abs_tol = i < num_nodes ? opts.vntol : opts.abstol;
      if (delta > abs_tol + opts.reltol * magnitude) converged = false;
    }

    // Damping: clamp runaway updates to keep the exponentials bounded.
    if (max_delta > opts.max_update) {
      const double scale = opts.max_update / max_delta;
      for (std::size_t i = 0; i < n; ++i) {
        x_new[i] = x[i] + scale * (x_new[i] - x[i]);
      }
      converged = false;
    }

    if (limiting_active) converged = false;
    x = x_new;
    if (converged && (iter >= 1 || !any_nonlinear)) {
      outcome.converged = true;
      break;
    }
    if (!any_nonlinear && iter >= 1) {
      // Linear circuit: second solve is identical; accept.
      outcome.converged = true;
      break;
    }
  }
  const linalg::SolverStats& exit_stats = solver.stats();
  outcome.factorizations = exit_stats.factorizations - entry_stats.factorizations;
  outcome.solves = exit_stats.solves - entry_stats.solves;
  return outcome;
}

// Feed the per-run delta of a backend's lifetime stats into the metrics
// registry (the backend outlives runs via the circuit's solver cache).
void add_solver_metrics(const linalg::SolverStats& before, const linalg::SolverStats& after) {
  if constexpr (obs::kEnabled) {
    auto& m = EngineMetrics::get();
    m.sv_factorizations.add(after.factorizations - before.factorizations);
    m.sv_refactorizations.add(after.refactorizations - before.refactorizations);
    m.sv_factor_skips.add(after.factor_skips - before.factor_skips);
    m.sv_solves.add(after.solves - before.solves);
    m.sv_pattern_builds.add(after.pattern_builds - before.pattern_builds);
    m.sv_pattern_reuses.add(after.pattern_reuses - before.pattern_reuses);
    m.sv_nnz.set(static_cast<double>(after.nnz));
    m.sv_factor_nnz.set(static_cast<double>(after.factor_nnz));
  }
}

void reset_devices_for_point(Circuit& circuit, double time, double dt) {
  for (const auto& dev : circuit.devices()) dev->start_step(time, dt);
}

}  // namespace

void set_default_solver_kind(linalg::SolverKind kind) {
  g_default_solver_kind.store(kind, std::memory_order_relaxed);
}

linalg::SolverKind default_solver_kind() {
  return g_default_solver_kind.load(std::memory_order_relaxed);
}

linalg::SolverKind effective_solver_kind(linalg::SolverKind from_options) {
  return from_options != linalg::SolverKind::kAuto ? from_options : default_solver_kind();
}

DcResult solve_dc(Circuit& circuit, const DcOptions& options) {
  if (options.validate) {
    LintOptions lint_opts;
    lint_opts.dc_context = true;
    validate(circuit, lint_opts);  // throws CircuitValidationError on errors
  }
  circuit.finalize();
  const std::size_t n = circuit.num_unknowns();
  linalg::LinearSolver& solver =
      circuit.acquire_solver(effective_solver_kind(options.solver));
  const linalg::SolverStats solver_before = solver.stats();
  DcResult result;
  result.x.assign(n, 0.0);

  obs::Span span("solve_dc", "spice");
  std::uint64_t lu_ns = 0;
  const auto finish = [&](DcResult&& done) {
    if constexpr (obs::kEnabled) {
      auto& m = EngineMetrics::get();
      m.dc_solves.add();
      m.dc_newton_iterations.add(static_cast<std::uint64_t>(done.total_iterations));
      m.dc_lu_ns.add(lu_ns);
      if (!done.converged) m.dc_failures.add();
      add_solver_metrics(solver_before, solver.stats());
      span.arg("strategy", done.converged ? done.strategy : "failed");
      span.arg("iterations", std::to_string(done.total_iterations));
      span.arg("solver", solver.name());
    }
    return std::move(done);
  };

  // 1. Plain Newton.
  {
    std::vector<double> x(n, 0.0);
    reset_devices_for_point(circuit, 0.0, 0.0);
    const auto outcome = newton_solve(circuit, solver, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                      /*dc=*/true, options.newton, 1.0, 0.0);
    result.total_iterations += outcome.iterations;
    lu_ns += outcome.lu_ns;
    if (outcome.converged) {
      result.x = std::move(x);
      result.converged = true;
      result.strategy = "newton";
      return finish(std::move(result));
    }
  }

  // 2. Gmin (shunt) stepping: start heavily damped, relax to nominal.
  if (options.gmin_stepping) {
    if constexpr (obs::kEnabled) EngineMetrics::get().dc_gmin_escalations.add();
    std::vector<double> x(n, 0.0);
    bool ladder_ok = true;
    for (double g = 1e-2; g >= 1e-12; g /= 10.0) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, solver, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, 1.0, g);
      result.total_iterations += outcome.iterations;
      lu_ns += outcome.lu_ns;
      if (!outcome.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, solver, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, 1.0, 0.0);
      result.total_iterations += outcome.iterations;
      lu_ns += outcome.lu_ns;
      if (outcome.converged) {
        result.x = std::move(x);
        result.converged = true;
        result.strategy = "gmin-stepping";
        return finish(std::move(result));
      }
    }
  }

  // 3. Source stepping.
  if (options.source_stepping) {
    if constexpr (obs::kEnabled) EngineMetrics::get().dc_source_escalations.add();
    std::vector<double> x(n, 0.0);
    bool ladder_ok = true;
    for (double scale = 0.05; scale <= 1.0 + 1e-12; scale += 0.05) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, solver, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, std::min(scale, 1.0), 0.0);
      result.total_iterations += outcome.iterations;
      lu_ns += outcome.lu_ns;
      if (!outcome.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      result.x = std::move(x);
      result.converged = true;
      result.strategy = "source-stepping";
      return finish(std::move(result));
    }
  }

  util::Log::event(util::LogLevel::kWarn, "spice.dc",
                   {{"event", "all_strategies_failed"},
                    {"iterations", std::to_string(result.total_iterations)}});
  return finish(std::move(result));
}

TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              TransientStats* stats) {
  if (options.t_stop <= 0.0) throw std::invalid_argument("run_transient: t_stop must be > 0");
  if (options.dt_max < 0.0) {
    throw std::invalid_argument("run_transient: dt_max must be > 0 (or 0 for auto)");
  }
  // dt_max 0 = auto: the static timescale pass's hint when one is
  // installed on the circuit, else the historical 1 us default.
  const double dt_max =
      options.dt_max > 0.0
          ? options.dt_max
          : (circuit.dt_hint() > 0.0 ? circuit.dt_hint() : kDefaultDtMax);
  const bool will_resume =
      options.resume_from != nullptr && options.resume_from->valid();
  if (options.validate) {
    // Validate exactly once per run. When the internal DC solve will run,
    // lint with dc_context escalation here and tell solve_dc the circuit
    // is already validated — previously lint ran twice per transient.
    LintOptions lint_options;
    lint_options.dc_context = options.start_from_dc && !will_resume;
    validate(circuit, lint_options);  // throws CircuitValidationError on errors
  }
  // Per-run tallies, kept even when the caller passes no stats: the
  // metrics registry is fed from the same numbers. Folded into the
  // caller's struct (accumulating, as before) on every exit path.
  TransientStats run;
  const auto wall_start = std::chrono::steady_clock::now();
  obs::Span span("run_transient", "spice");
  std::uint64_t lu_ns = 0;
  // Folds the per-run tallies into the caller's stats and the metrics
  // registry on every exit path, including the throwing ones.
  struct Finalize {
    TransientStats& run;
    TransientStats* out;
    std::chrono::steady_clock::time_point start;
    std::uint64_t& lu_ns;
    obs::Span& span;
    // Set once the circuit's solver is acquired (after validation).
    const linalg::LinearSolver* solver = nullptr;
    linalg::SolverStats solver_before{};
    ~Finalize() {
      run.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      if (out != nullptr) {
        out->accepted_steps += run.accepted_steps;
        out->rejected_steps += run.rejected_steps;
        out->newton_iterations += run.newton_iterations;
        out->factorizations += run.factorizations;
        out->solves += run.solves;
        out->breakpoint_hits += run.breakpoint_hits;
        out->lte_rejections += run.lte_rejections;
        out->max_newton_iterations =
            std::max(out->max_newton_iterations, run.max_newton_iterations);
        out->wall_seconds += run.wall_seconds;
      }
      if constexpr (obs::kEnabled) {
        auto& m = EngineMetrics::get();
        m.tr_runs.add();
        m.tr_accepted_steps.add(run.accepted_steps);
        m.tr_rejected_steps.add(run.rejected_steps);
        m.tr_lte_rejections.add(run.lte_rejections);
        m.tr_newton_iterations.add(run.newton_iterations);
        m.tr_factorizations.add(run.factorizations);
        m.tr_solves.add(run.solves);
        m.tr_breakpoint_hits.add(run.breakpoint_hits);
        m.tr_lu_ns.add(lu_ns);
        if (run.wall_seconds > 0.0) {
          m.tr_last_steps_per_sec.set(static_cast<double>(run.accepted_steps) /
                                      run.wall_seconds);
        }
        if (solver != nullptr) {
          add_solver_metrics(solver_before, solver->stats());
          span.arg("solver", solver->name());
        }
        span.arg("accepted_steps", std::to_string(run.accepted_steps));
        span.arg("rejected_steps", std::to_string(run.rejected_steps));
        span.arg("newton_iterations", std::to_string(run.newton_iterations));
      }
    }
  } finalize{run, stats, wall_start, lu_ns, span};
  circuit.finalize();
  const std::size_t n = circuit.num_unknowns();
  linalg::LinearSolver& solver =
      circuit.acquire_solver(effective_solver_kind(options.solver));
  finalize.solver = &solver;
  finalize.solver_before = solver.stats();
  const double dt_min =
      options.dt_min > 0.0 ? options.dt_min : dt_max / 65536.0;

  const TransientCheckpoint* resume = options.resume_from;
  const bool resuming = resume != nullptr && resume->valid();
  if (resuming) {
    if (resume->x.size() != n) {
      throw std::invalid_argument(
          "run_transient: resume_from checkpoint does not match circuit size");
    }
    if (resume->dt <= 0.0) {
      throw std::invalid_argument("run_transient: resume_from has no step size");
    }
    if (resume->time >= options.t_stop - 1e-15 * options.t_stop) {
      throw std::invalid_argument("run_transient: resume_from.time is at/after t_stop");
    }
  }

  // Initial solution.
  std::vector<double> x(n, 0.0);
  if (resuming) {
    x = resume->x;
  } else if (options.start_from_dc) {
    DcOptions dc_opts;
    dc_opts.newton = options.newton;
    dc_opts.validate = false;  // validated above (with dc_context) already
    dc_opts.solver = options.solver;
    const DcResult dc = solve_dc(circuit, dc_opts);
    if (!dc.converged) {
      throw std::runtime_error("run_transient: DC operating point failed to converge");
    }
    x = dc.x;
    circuit.finalize();  // re-run setup in case solve_dc's finalize reordered branches
    // solve_dc emitted its own solver-metric delta; restart ours here so
    // the DC share is not counted twice.
    finalize.solver_before = solver.stats();
  }
  for (const auto& dev : circuit.devices()) dev->initialize(x);
  if (resuming) {
    // initialize() above seeded companion models from the checkpointed
    // solution; now overwrite their cross-step history with the exact
    // state captured by save_state, in the same device order.
    const std::span<const double> blob(resume->device_state);
    std::size_t offset = 0;
    for (const auto& dev : circuit.devices()) {
      offset += dev->restore_state(blob.subspan(offset));
    }
    if (offset != resume->device_state.size()) {
      throw std::invalid_argument(
          "run_transient: resume_from device-state blob does not match circuit");
    }
    if constexpr (obs::kEnabled) EngineMetrics::get().tr_resumes.add();
  }

  // Recording setup.
  const auto all_names = circuit.signal_names();
  std::vector<std::string> record_names;
  std::vector<std::size_t> record_indices;
  if (options.record_signals.empty()) {
    record_names = all_names;
    record_indices.resize(all_names.size());
    for (std::size_t i = 0; i < all_names.size(); ++i) record_indices[i] = i;
  } else {
    for (const auto& want : options.record_signals) {
      const auto it = std::find(all_names.begin(), all_names.end(), want);
      if (it == all_names.end()) {
        throw std::invalid_argument("run_transient: unknown record signal '" + want + "'");
      }
      record_names.push_back(want);
      record_indices.push_back(static_cast<std::size_t>(it - all_names.begin()));
    }
  }
  TransientResult result(std::move(record_names), std::move(record_indices));
  result.reserve(static_cast<std::size_t>(options.t_stop / dt_max /
                                          std::max(options.record_every, 1)) + 16);

  // Breakpoints from stimulus waveforms.
  std::vector<double> breakpoints;
  for (const auto& dev : circuit.devices()) {
    dev->collect_breakpoints(0.0, options.t_stop, breakpoints);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [](double a, double b) { return std::abs(a - b) < 1e-15; }),
                    breakpoints.end());
  std::size_t bp_index = 0;

  // The checkpointed point itself was recorded by the run that captured
  // it, so a resumed run starts recording strictly after resume->time.
  if (!resuming && options.record_start <= 0.0) result.append(0.0, x);

  double t = resuming ? resume->time : 0.0;
  double dt = resuming ? resume->dt : dt_max;
  int success_streak = resuming ? resume->success_streak : 0;
  // Accepted-step ordinal used for record decimation; restored on resume
  // so the record phase is continuous across the splice.
  std::size_t step_index = resuming ? resume->step_index : 0;
  std::vector<double> x_try(n);
  // LTE controller history: the previous accepted point and its step.
  std::vector<double> x_prev(n, 0.0);
  double dt_prev = 0.0;
  bool have_prev_point = false;
  if (resuming) {
    if (resume->x_prev.size() == n) x_prev = resume->x_prev;
    dt_prev = resume->dt_prev;
    have_prev_point = resume->have_prev_point;
  }
  const bool checkpointing = options.checkpoint != nullptr;
  double next_checkpoint_time = options.checkpoint_interval > 0.0
                                    ? t + options.checkpoint_interval
                                    : std::numeric_limits<double>::infinity();
  const std::size_t kMaxSteps = 200'000'000;

  obs::Histogram* newton_hist = nullptr;
  if constexpr (obs::kEnabled) {
    newton_hist = &EngineMetrics::get().tr_newton_iters_per_step;
  }

  while (t < options.t_stop - 1e-15 * options.t_stop) {
    if (run.accepted_steps + run.rejected_steps > kMaxSteps) {
      throw std::runtime_error("run_transient: step-count safety limit exceeded");
    }
    // Advance the breakpoint cursor past points at/behind t. The slack
    // tolerates accumulated summation error in t relative to the exact
    // breakpoint value.
    const double bp_slack = std::max(1e-18, 1e-12 * t);
    while (bp_index < breakpoints.size() && breakpoints[bp_index] <= t + bp_slack) {
      ++bp_index;
    }
    double dt_step = std::min(dt, options.t_stop - t);
    // Snap the step to the next stimulus breakpoint when it falls inside
    // this step; snapped points carry a recording guarantee (see
    // TransientOptions::record_every). The relative tolerance on the
    // comparison matters: after ~k accumulated steps, t carries O(k) ulps
    // of rounding error, so a breakpoint exactly one nominal step away can
    // measure infinitesimally beyond dt_step and would otherwise be
    // stepped *onto* (within rounding) but never flagged as snapped.
    bool snapped_to_bp = false;
    if (bp_index < breakpoints.size()) {
      const double to_bp = breakpoints[bp_index] - t;
      if (to_bp > bp_slack && to_bp <= dt_step * (1.0 + 1e-9)) {
        dt_step = to_bp;
        snapped_to_bp = true;
      }
    }

    const double t_next = t + dt_step;
    reset_devices_for_point(circuit, t_next, dt_step);
    x_try = x;
    const auto outcome = newton_solve(circuit, solver, x_try, t_next, dt_step,
                                      options.integrator,
                                      /*dc=*/false, options.newton, 1.0, 0.0);
    run.newton_iterations += static_cast<std::size_t>(outcome.iterations);
    run.factorizations += static_cast<std::size_t>(outcome.factorizations);
    run.solves += static_cast<std::size_t>(outcome.solves);
    run.max_newton_iterations =
        std::max(run.max_newton_iterations, static_cast<std::size_t>(outcome.iterations));
    lu_ns += outcome.lu_ns;
    if (newton_hist != nullptr) {
      newton_hist->observe(static_cast<double>(outcome.iterations));
    }

    if (!outcome.converged) {
      ++run.rejected_steps;
      success_streak = 0;
      dt = dt_step / 2.0;
      if (dt < dt_min) {
        throw std::runtime_error("run_transient: Newton failed below minimum step at t=" +
                                 std::to_string(t_next));
      }
      continue;
    }

    // LTE step control: measure the deviation from a linear prediction.
    if (options.adaptive && have_prev_point && dt_prev > 0.0) {
      double err = 0.0;
      const double ratio = dt_step / dt_prev;
      for (std::size_t i = 0; i < n; ++i) {
        const double predicted = x[i] + (x[i] - x_prev[i]) * ratio;
        err = std::max(err, std::abs(x_try[i] - predicted));
      }
      if (err > 4.0 * options.lte_tol && dt_step > 2.0 * dt_min) {
        ++run.rejected_steps;
        ++run.lte_rejections;
        success_streak = 0;
        dt = std::max(dt_step / 2.0, dt_min);
        continue;  // redo the point with a smaller step
      }
      // Accepted: pick the next step from the error (clamped growth).
      const double scale =
          err > 0.0 ? std::sqrt(options.lte_tol / err) : 2.0;
      dt = std::min(dt_max,
                    std::max(dt_min, dt_step * std::min(std::max(scale, 0.5), 2.0)));
    }

    if (options.adaptive) {
      x_prev = x;
      dt_prev = dt_step;
      have_prev_point = true;
    }

    for (const auto& dev : circuit.devices()) {
      dev->accept_step(x_try, t_next, dt_step, options.integrator);
    }
    x.swap(x_try);
    t = t_next;
    ++run.accepted_steps;
    ++step_index;
    if (snapped_to_bp) ++run.breakpoint_hits;

    const bool is_final = t >= options.t_stop - 1e-15 * options.t_stop;
    const bool take_checkpoint =
        checkpointing && (is_final || snapped_to_bp || t >= next_checkpoint_time);
    // Recording guarantee: breakpoint-snapped points, checkpointed points
    // and the final point are never decimated away (see
    // TransientOptions::record_every).
    if (t >= options.record_start &&
        (is_final || snapped_to_bp || take_checkpoint ||
         step_index %
                 static_cast<std::size_t>(std::max(options.record_every, 1)) ==
             0)) {
      result.append(t, x);
    }

    // Step recovery after a run of clean accepts (the LTE controller
    // manages dt itself in adaptive mode).
    ++success_streak;
    if (!options.adaptive && success_streak >= 4 && dt < dt_max) {
      dt = std::min(dt * 2.0, dt_max);
      success_streak = 0;
    }

    // Capture after the step-control update so a resume continues with
    // exactly the dt/streak the uninterrupted run would have used next.
    if (take_checkpoint) {
      TransientCheckpoint& cp = *options.checkpoint;
      cp.time = t;
      cp.dt = dt;
      cp.x = x;
      cp.device_state.clear();
      for (const auto& dev : circuit.devices()) dev->save_state(cp.device_state);
      cp.success_streak = success_streak;
      cp.step_index = step_index;
      cp.x_prev = x_prev;
      cp.dt_prev = dt_prev;
      cp.have_prev_point = have_prev_point;
      if (options.checkpoint_interval > 0.0) {
        next_checkpoint_time = t + options.checkpoint_interval;
      }
      if constexpr (obs::kEnabled) EngineMetrics::get().tr_checkpoints.add();
    }
  }
  return result;
}

}  // namespace ironic::spice
