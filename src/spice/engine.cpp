#include "src/spice/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/linalg/lu.hpp"
#include "src/util/log.hpp"

namespace ironic::spice {
namespace {

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
};

// One Newton solve of the (possibly nonlinear) MNA system at a fixed
// time point. `x` is both the initial guess and the result.
NewtonOutcome newton_solve(Circuit& circuit, std::vector<double>& x, double time,
                           double dt, Integrator integrator, bool dc,
                           const NewtonOptions& opts, double source_scale,
                           double extra_gshunt) {
  const std::size_t n = circuit.num_unknowns();
  const std::size_t num_nodes = circuit.num_nodes();
  linalg::Matrix a(n, n);
  std::vector<double> rhs(n, 0.0);
  std::vector<double> x_new(n, 0.0);
  NewtonOutcome outcome;

  bool any_nonlinear = false;
  for (const auto& dev : circuit.devices()) any_nonlinear |= dev->nonlinear();

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++outcome.iterations;
    a.fill(0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx{a, rhs, x, time, dt, integrator, dc, opts.gmin, source_scale, false};
    for (const auto& dev : circuit.devices()) dev->stamp(ctx);
    const bool limiting_active = ctx.limited;

    const double gshunt = opts.gshunt + extra_gshunt;
    if (gshunt > 0.0) {
      for (std::size_t i = 0; i < num_nodes; ++i) a(i, i) += gshunt;
    }

    try {
      linalg::LuFactorization lu(a);
      x_new = rhs;
      lu.solve_in_place(x_new);
    } catch (const linalg::SingularMatrixError&) {
      return outcome;  // not converged
    }

    // Convergence check on the update.
    bool converged = true;
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = std::abs(x_new[i] - x[i]);
      max_delta = std::max(max_delta, delta);
      const double magnitude = std::max(std::abs(x_new[i]), std::abs(x[i]));
      const double abs_tol = i < num_nodes ? opts.vntol : opts.abstol;
      if (delta > abs_tol + opts.reltol * magnitude) converged = false;
    }

    // Damping: clamp runaway updates to keep the exponentials bounded.
    if (max_delta > opts.max_update) {
      const double scale = opts.max_update / max_delta;
      for (std::size_t i = 0; i < n; ++i) {
        x_new[i] = x[i] + scale * (x_new[i] - x[i]);
      }
      converged = false;
    }

    if (limiting_active) converged = false;
    x = x_new;
    if (converged && (iter >= 1 || !any_nonlinear)) {
      outcome.converged = true;
      return outcome;
    }
    if (!any_nonlinear && iter >= 1) {
      // Linear circuit: second solve is identical; accept.
      outcome.converged = true;
      return outcome;
    }
  }
  return outcome;
}

void reset_devices_for_point(Circuit& circuit, double time, double dt) {
  for (const auto& dev : circuit.devices()) dev->start_step(time, dt);
}

}  // namespace

DcResult solve_dc(Circuit& circuit, const DcOptions& options) {
  circuit.finalize();
  const std::size_t n = circuit.num_unknowns();
  DcResult result;
  result.x.assign(n, 0.0);

  // 1. Plain Newton.
  {
    std::vector<double> x(n, 0.0);
    reset_devices_for_point(circuit, 0.0, 0.0);
    const auto outcome = newton_solve(circuit, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                      /*dc=*/true, options.newton, 1.0, 0.0);
    result.total_iterations += outcome.iterations;
    if (outcome.converged) {
      result.x = std::move(x);
      result.converged = true;
      result.strategy = "newton";
      return result;
    }
  }

  // 2. Gmin (shunt) stepping: start heavily damped, relax to nominal.
  if (options.gmin_stepping) {
    std::vector<double> x(n, 0.0);
    bool ladder_ok = true;
    for (double g = 1e-2; g >= 1e-12; g /= 10.0) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, 1.0, g);
      result.total_iterations += outcome.iterations;
      if (!outcome.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, 1.0, 0.0);
      result.total_iterations += outcome.iterations;
      if (outcome.converged) {
        result.x = std::move(x);
        result.converged = true;
        result.strategy = "gmin-stepping";
        return result;
      }
    }
  }

  // 3. Source stepping.
  if (options.source_stepping) {
    std::vector<double> x(n, 0.0);
    bool ladder_ok = true;
    for (double scale = 0.05; scale <= 1.0 + 1e-12; scale += 0.05) {
      reset_devices_for_point(circuit, 0.0, 0.0);
      const auto outcome = newton_solve(circuit, x, 0.0, 0.0, Integrator::kBackwardEuler,
                                        true, options.newton, std::min(scale, 1.0), 0.0);
      result.total_iterations += outcome.iterations;
      if (!outcome.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      result.x = std::move(x);
      result.converged = true;
      result.strategy = "source-stepping";
      return result;
    }
  }

  util::Log::warn("solve_dc: all strategies failed to converge");
  return result;
}

TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              TransientStats* stats) {
  if (options.t_stop <= 0.0) throw std::invalid_argument("run_transient: t_stop must be > 0");
  if (options.dt_max <= 0.0) throw std::invalid_argument("run_transient: dt_max must be > 0");
  circuit.finalize();
  const std::size_t n = circuit.num_unknowns();
  const double dt_min =
      options.dt_min > 0.0 ? options.dt_min : options.dt_max / 65536.0;

  // Initial solution.
  std::vector<double> x(n, 0.0);
  if (options.start_from_dc) {
    DcOptions dc_opts;
    dc_opts.newton = options.newton;
    const DcResult dc = solve_dc(circuit, dc_opts);
    if (!dc.converged) {
      throw std::runtime_error("run_transient: DC operating point failed to converge");
    }
    x = dc.x;
    circuit.finalize();  // re-run setup in case solve_dc's finalize reordered branches
  }
  for (const auto& dev : circuit.devices()) dev->initialize(x);

  // Recording setup.
  const auto all_names = circuit.signal_names();
  std::vector<std::string> record_names;
  std::vector<std::size_t> record_indices;
  if (options.record_signals.empty()) {
    record_names = all_names;
    record_indices.resize(all_names.size());
    for (std::size_t i = 0; i < all_names.size(); ++i) record_indices[i] = i;
  } else {
    for (const auto& want : options.record_signals) {
      const auto it = std::find(all_names.begin(), all_names.end(), want);
      if (it == all_names.end()) {
        throw std::invalid_argument("run_transient: unknown record signal '" + want + "'");
      }
      record_names.push_back(want);
      record_indices.push_back(static_cast<std::size_t>(it - all_names.begin()));
    }
  }
  TransientResult result(std::move(record_names), std::move(record_indices));
  result.reserve(static_cast<std::size_t>(options.t_stop / options.dt_max /
                                          std::max(options.record_every, 1)) + 16);

  // Breakpoints from stimulus waveforms.
  std::vector<double> breakpoints;
  for (const auto& dev : circuit.devices()) {
    dev->collect_breakpoints(0.0, options.t_stop, breakpoints);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [](double a, double b) { return std::abs(a - b) < 1e-15; }),
                    breakpoints.end());
  std::size_t bp_index = 0;

  if (options.record_start <= 0.0) result.append(0.0, x);

  double t = 0.0;
  double dt = options.dt_max;
  std::size_t accepted = 0;
  int success_streak = 0;
  std::vector<double> x_try(n);
  // LTE controller history: the previous accepted point and its step.
  std::vector<double> x_prev(n, 0.0);
  double dt_prev = 0.0;
  bool have_prev_point = false;
  const std::size_t kMaxSteps = 200'000'000;

  while (t < options.t_stop - 1e-15 * options.t_stop) {
    if (accepted + (stats ? stats->rejected_steps : 0) > kMaxSteps) {
      throw std::runtime_error("run_transient: step-count safety limit exceeded");
    }
    // Advance the breakpoint cursor past points at/behind t.
    while (bp_index < breakpoints.size() && breakpoints[bp_index] <= t + 1e-18) {
      ++bp_index;
    }
    double dt_step = std::min(dt, options.t_stop - t);
    if (bp_index < breakpoints.size()) {
      const double to_bp = breakpoints[bp_index] - t;
      if (to_bp > 1e-18) dt_step = std::min(dt_step, to_bp);
    }

    const double t_next = t + dt_step;
    reset_devices_for_point(circuit, t_next, dt_step);
    x_try = x;
    const auto outcome = newton_solve(circuit, x_try, t_next, dt_step, options.integrator,
                                      /*dc=*/false, options.newton, 1.0, 0.0);
    if (stats) stats->newton_iterations += static_cast<std::size_t>(outcome.iterations);

    if (!outcome.converged) {
      if (stats) ++stats->rejected_steps;
      success_streak = 0;
      dt = dt_step / 2.0;
      if (dt < dt_min) {
        throw std::runtime_error("run_transient: Newton failed below minimum step at t=" +
                                 std::to_string(t_next));
      }
      continue;
    }

    // LTE step control: measure the deviation from a linear prediction.
    if (options.adaptive && have_prev_point && dt_prev > 0.0) {
      double err = 0.0;
      const double ratio = dt_step / dt_prev;
      for (std::size_t i = 0; i < n; ++i) {
        const double predicted = x[i] + (x[i] - x_prev[i]) * ratio;
        err = std::max(err, std::abs(x_try[i] - predicted));
      }
      if (err > 4.0 * options.lte_tol && dt_step > 2.0 * dt_min) {
        if (stats) ++stats->rejected_steps;
        success_streak = 0;
        dt = std::max(dt_step / 2.0, dt_min);
        continue;  // redo the point with a smaller step
      }
      // Accepted: pick the next step from the error (clamped growth).
      const double scale =
          err > 0.0 ? std::sqrt(options.lte_tol / err) : 2.0;
      dt = std::min(options.dt_max,
                    std::max(dt_min, dt_step * std::min(std::max(scale, 0.5), 2.0)));
    }

    if (options.adaptive) {
      x_prev = x;
      dt_prev = dt_step;
      have_prev_point = true;
    }

    for (const auto& dev : circuit.devices()) {
      dev->accept_step(x_try, t_next, dt_step, options.integrator);
    }
    x.swap(x_try);
    t = t_next;
    ++accepted;
    if (stats) ++stats->accepted_steps;

    const bool is_final = t >= options.t_stop - 1e-15 * options.t_stop;
    if (t >= options.record_start &&
        (is_final || accepted % static_cast<std::size_t>(std::max(options.record_every, 1)) == 0)) {
      result.append(t, x);
    }

    // Step recovery after a run of clean accepts (the LTE controller
    // manages dt itself in adaptive mode).
    ++success_streak;
    if (!options.adaptive && success_streak >= 4 && dt < options.dt_max) {
      dt = std::min(dt * 2.0, options.dt_max);
      success_streak = 0;
    }
  }
  return result;
}

}  // namespace ironic::spice
