#include "src/spice/devices_passive.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  if (resistance_ <= 0.0) throw std::invalid_argument("Resistor: resistance must be > 0");
}

void Resistor::stamp(StampContext& ctx) {
  stamp_conductance(ctx, a_, b_, 1.0 / resistance_);
}

void Resistor::stamp_ac(AcStampContext& ctx) const {
  ac_admittance(ctx, a_, b_, linalg::Complex{1.0 / resistance_, 0.0});
}

void Resistor::set_resistance(double r) {
  if (r <= 0.0) throw std::invalid_argument("Resistor: resistance must be > 0");
  resistance_ = r;
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance,
                     double initial_voltage)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance), ic_(initial_voltage) {
  if (capacitance_ <= 0.0) throw std::invalid_argument("Capacitor: capacitance must be > 0");
}

double Capacitor::branch_voltage(std::span<const double> x) const {
  const double va = a_ == kGround ? 0.0 : x[static_cast<std::size_t>(a_)];
  const double vb = b_ == kGround ? 0.0 : x[static_cast<std::size_t>(b_)];
  return va - vb;
}

void Capacitor::initialize(std::span<const double> x0) {
  v_state_ = (ic_ != 0.0) ? ic_ : branch_voltage(x0);
  i_state_ = 0.0;
  has_history_ = false;
}

void Capacitor::stamp(StampContext& ctx) {
  if (ctx.dc) return;  // open circuit at DC
  const bool trap = ctx.integrator == Integrator::kTrapezoidal && has_history_;
  const double g = (trap ? 2.0 : 1.0) * capacitance_ / ctx.dt;
  // Device current a -> b: i = g (va - vb) + i0.
  const double i0 = trap ? (-g * v_state_ - i_state_) : (-g * v_state_);
  stamp_conductance(ctx, a_, b_, g);
  stamp_current(ctx, a_, b_, i0);
}

void Capacitor::stamp_ac(AcStampContext& ctx) const {
  ac_admittance(ctx, a_, b_, linalg::Complex{0.0, ctx.omega * capacitance_});
}

void Capacitor::accept_step(std::span<const double> x, double /*time*/, double dt,
                            Integrator integrator) {
  const bool trap = integrator == Integrator::kTrapezoidal && has_history_;
  const double g = (trap ? 2.0 : 1.0) * capacitance_ / dt;
  const double v_new = branch_voltage(x);
  const double i_new = trap ? (g * (v_new - v_state_) - i_state_) : (g * (v_new - v_state_));
  v_state_ = v_new;
  i_state_ = i_new;
  has_history_ = true;
}

void Capacitor::save_state(std::vector<double>& out) const {
  out.push_back(v_state_);
  out.push_back(i_state_);
  out.push_back(has_history_ ? 1.0 : 0.0);
}

std::size_t Capacitor::restore_state(std::span<const double> in) {
  if (in.size() < 3) throw std::invalid_argument("Capacitor::restore_state: blob too short");
  v_state_ = in[0];
  i_state_ = in[1];
  has_history_ = in[2] != 0.0;
  return 3;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance,
                   double series_resistance, double initial_current)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      inductance_(inductance),
      esr_(series_resistance),
      ic_(initial_current) {
  if (inductance_ <= 0.0) throw std::invalid_argument("Inductor: inductance must be > 0");
  if (esr_ < 0.0) throw std::invalid_argument("Inductor: series resistance must be >= 0");
}

void Inductor::setup(Circuit& ckt) { branch_ = ckt.allocate_branch(name()); }

void Inductor::initialize(std::span<const double> x0) {
  const double i_from_op =
      branch_ >= 0 && static_cast<std::size_t>(branch_) < x0.size()
          ? x0[static_cast<std::size_t>(branch_)]
          : 0.0;
  i_state_ = (ic_ != 0.0) ? ic_ : i_from_op;
  const double va = a_ == kGround ? 0.0 : x0[static_cast<std::size_t>(a_)];
  const double vb = b_ == kGround ? 0.0 : x0[static_cast<std::size_t>(b_)];
  v_state_ = va - vb - esr_ * i_state_;
  has_history_ = false;
}

void Inductor::stamp(StampContext& ctx) {
  // KCL coupling: branch current leaves a, enters b.
  add_a(ctx, a_, branch_, 1.0);
  add_a(ctx, b_, branch_, -1.0);
  // Branch equation.
  add_a(ctx, branch_, a_, 1.0);
  add_a(ctx, branch_, b_, -1.0);
  if (ctx.dc) {
    add_a(ctx, branch_, branch_, -std::max(esr_, 1e-9));  // DC short (tiny R for pivoting)
    return;
  }
  const bool trap = ctx.integrator == Integrator::kTrapezoidal && has_history_;
  const double zl = (trap ? 2.0 : 1.0) * inductance_ / ctx.dt;
  add_a(ctx, branch_, branch_, -(esr_ + zl));
  const double rhs = trap ? (-zl * i_state_ - v_state_) : (-zl * i_state_);
  add_rhs(ctx, branch_, rhs);
}

void Inductor::stamp_ac(AcStampContext& ctx) const {
  ac_add(ctx, a_, branch_, {1.0, 0.0});
  ac_add(ctx, b_, branch_, {-1.0, 0.0});
  ac_add(ctx, branch_, a_, {1.0, 0.0});
  ac_add(ctx, branch_, b_, {-1.0, 0.0});
  ac_add(ctx, branch_, branch_, -linalg::Complex{esr_, ctx.omega * inductance_});
}

void Inductor::accept_step(std::span<const double> x, double /*time*/, double /*dt*/,
                           Integrator /*integrator*/) {
  i_state_ = x[static_cast<std::size_t>(branch_)];
  const double va = a_ == kGround ? 0.0 : x[static_cast<std::size_t>(a_)];
  const double vb = b_ == kGround ? 0.0 : x[static_cast<std::size_t>(b_)];
  v_state_ = va - vb - esr_ * i_state_;
  has_history_ = true;
}

void Inductor::save_state(std::vector<double>& out) const {
  out.push_back(i_state_);
  out.push_back(v_state_);
  out.push_back(has_history_ ? 1.0 : 0.0);
}

std::size_t Inductor::restore_state(std::span<const double> in) {
  if (in.size() < 3) throw std::invalid_argument("Inductor::restore_state: blob too short");
  i_state_ = in[0];
  v_state_ = in[1];
  has_history_ = in[2] != 0.0;
  return 3;
}

// --------------------------------------------------------- CoupledInductors

CoupledInductors::CoupledInductors(std::string name, NodeId p1, NodeId p2, NodeId s1,
                                   NodeId s2, double l_primary, double l_secondary,
                                   double coupling, double r_primary, double r_secondary)
    : Device(std::move(name)),
      p1_(p1),
      p2_(p2),
      s1_(s1),
      s2_(s2),
      l1_(l_primary),
      l2_(l_secondary),
      coupling_(coupling),
      mutual_(coupling * std::sqrt(l_primary * l_secondary)),
      r1_(r_primary),
      r2_(r_secondary) {
  if (l1_ <= 0.0 || l2_ <= 0.0) {
    throw std::invalid_argument("CoupledInductors: inductances must be > 0");
  }
  if (coupling_ < 0.0 || coupling_ >= 1.0) {
    throw std::invalid_argument("CoupledInductors: coupling must be in [0, 1)");
  }
}

void CoupledInductors::set_coupling(double coupling) {
  if (coupling < 0.0 || coupling >= 1.0) {
    throw std::invalid_argument("CoupledInductors: coupling must be in [0, 1)");
  }
  coupling_ = coupling;
  mutual_ = coupling * std::sqrt(l1_ * l2_);
}

void CoupledInductors::setup(Circuit& ckt) {
  bp_ = ckt.allocate_branch(name() + ".p");
  bs_ = ckt.allocate_branch(name() + ".s");
}

void CoupledInductors::initialize(std::span<const double> x0) {
  const auto volt = [&](NodeId n) {
    return n == kGround ? 0.0 : x0[static_cast<std::size_t>(n)];
  };
  i1_state_ = x0.size() > static_cast<std::size_t>(bp_) ? x0[static_cast<std::size_t>(bp_)] : 0.0;
  i2_state_ = x0.size() > static_cast<std::size_t>(bs_) ? x0[static_cast<std::size_t>(bs_)] : 0.0;
  v1_state_ = volt(p1_) - volt(p2_) - r1_ * i1_state_;
  v2_state_ = volt(s1_) - volt(s2_) - r2_ * i2_state_;
  has_history_ = false;
}

void CoupledInductors::stamp(StampContext& ctx) {
  // KCL coupling for both windings.
  add_a(ctx, p1_, bp_, 1.0);
  add_a(ctx, p2_, bp_, -1.0);
  add_a(ctx, s1_, bs_, 1.0);
  add_a(ctx, s2_, bs_, -1.0);
  // Branch voltage rows.
  add_a(ctx, bp_, p1_, 1.0);
  add_a(ctx, bp_, p2_, -1.0);
  add_a(ctx, bs_, s1_, 1.0);
  add_a(ctx, bs_, s2_, -1.0);
  if (ctx.dc) {
    add_a(ctx, bp_, bp_, -std::max(r1_, 1e-9));
    add_a(ctx, bs_, bs_, -std::max(r2_, 1e-9));
    return;
  }
  const bool trap = ctx.integrator == Integrator::kTrapezoidal && has_history_;
  const double scale = (trap ? 2.0 : 1.0) / ctx.dt;
  const double z11 = scale * l1_;
  const double z22 = scale * l2_;
  const double zm = scale * mutual_;
  add_a(ctx, bp_, bp_, -(r1_ + z11));
  add_a(ctx, bp_, bs_, -zm);
  add_a(ctx, bs_, bs_, -(r2_ + z22));
  add_a(ctx, bs_, bp_, -zm);
  const double rhs1 = -(z11 * i1_state_ + zm * i2_state_) - (trap ? v1_state_ : 0.0);
  const double rhs2 = -(z22 * i2_state_ + zm * i1_state_) - (trap ? v2_state_ : 0.0);
  add_rhs(ctx, bp_, rhs1);
  add_rhs(ctx, bs_, rhs2);
}

void CoupledInductors::stamp_ac(AcStampContext& ctx) const {
  ac_add(ctx, p1_, bp_, {1.0, 0.0});
  ac_add(ctx, p2_, bp_, {-1.0, 0.0});
  ac_add(ctx, s1_, bs_, {1.0, 0.0});
  ac_add(ctx, s2_, bs_, {-1.0, 0.0});
  ac_add(ctx, bp_, p1_, {1.0, 0.0});
  ac_add(ctx, bp_, p2_, {-1.0, 0.0});
  ac_add(ctx, bs_, s1_, {1.0, 0.0});
  ac_add(ctx, bs_, s2_, {-1.0, 0.0});
  ac_add(ctx, bp_, bp_, -linalg::Complex{r1_, ctx.omega * l1_});
  ac_add(ctx, bp_, bs_, -linalg::Complex{0.0, ctx.omega * mutual_});
  ac_add(ctx, bs_, bs_, -linalg::Complex{r2_, ctx.omega * l2_});
  ac_add(ctx, bs_, bp_, -linalg::Complex{0.0, ctx.omega * mutual_});
}

void CoupledInductors::accept_step(std::span<const double> x, double /*time*/, double /*dt*/,
                                   Integrator /*integrator*/) {
  const auto volt = [&](NodeId n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n)];
  };
  i1_state_ = x[static_cast<std::size_t>(bp_)];
  i2_state_ = x[static_cast<std::size_t>(bs_)];
  v1_state_ = volt(p1_) - volt(p2_) - r1_ * i1_state_;
  v2_state_ = volt(s1_) - volt(s2_) - r2_ * i2_state_;
  has_history_ = true;
}

void CoupledInductors::save_state(std::vector<double>& out) const {
  out.push_back(i1_state_);
  out.push_back(i2_state_);
  out.push_back(v1_state_);
  out.push_back(v2_state_);
  out.push_back(has_history_ ? 1.0 : 0.0);
}

std::size_t CoupledInductors::restore_state(std::span<const double> in) {
  if (in.size() < 5) {
    throw std::invalid_argument("CoupledInductors::restore_state: blob too short");
  }
  i1_state_ = in[0];
  i2_state_ = in[1];
  v1_state_ = in[2];
  v2_state_ = in[3];
  has_history_ = in[4] != 0.0;
  return 5;
}


// ------------------------------------------------------------- reflection

DeviceInfo Resistor::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kResistor;
  d.terminals = {{"+", a_, TerminalDc::kConducting}, {"-", b_, TerminalDc::kConducting}};
  d.value = resistance_;
  d.has_value = true;
  return d;
}

void Resistor::check_params(std::vector<std::string>& errors,
                            std::vector<std::string>& /*warnings*/) const {
  if (resistance_ <= 0.0) errors.push_back("resistance must be > 0");
}

DeviceInfo Capacitor::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kCapacitor;
  d.terminals = {{"+", a_, TerminalDc::kBlocking}, {"-", b_, TerminalDc::kBlocking}};
  d.value = capacitance_;
  d.has_value = true;
  return d;
}

void Capacitor::check_params(std::vector<std::string>& errors,
                             std::vector<std::string>& /*warnings*/) const {
  if (capacitance_ <= 0.0) errors.push_back("capacitance must be > 0");
}

DeviceInfo Inductor::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kInductor;
  d.terminals = {{"+", a_, TerminalDc::kConducting}, {"-", b_, TerminalDc::kConducting}};
  d.value = inductance_;
  d.has_value = true;
  if (esr_ == 0.0) d.rigid_pairs = {{0, 1}};  // ideal winding: a DC short
  return d;
}

void Inductor::check_params(std::vector<std::string>& errors,
                            std::vector<std::string>& /*warnings*/) const {
  if (inductance_ <= 0.0) errors.push_back("inductance must be > 0");
  if (esr_ < 0.0) errors.push_back("series resistance must be >= 0");
}

DeviceInfo CoupledInductors::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kCoupledInductors;
  d.terminals = {{"p1", p1_, TerminalDc::kConducting},
                 {"p2", p2_, TerminalDc::kConducting},
                 {"s1", s1_, TerminalDc::kConducting},
                 {"s2", s2_, TerminalDc::kConducting}};
  d.dc_groups = {{0, 1}, {2, 3}};  // windings are galvanically isolated
  if (r1_ == 0.0) d.rigid_pairs.push_back({0, 1});
  if (r2_ == 0.0) d.rigid_pairs.push_back({2, 3});
  return d;
}

void CoupledInductors::check_params(std::vector<std::string>& errors,
                                    std::vector<std::string>& warnings) const {
  if (l1_ <= 0.0 || l2_ <= 0.0) errors.push_back("winding inductances must be > 0");
  if (coupling_ < 0.0 || coupling_ >= 1.0) {
    errors.push_back("coupling coefficient must be in [0, 1)");
  } else if (coupling_ > 0.0 && coupling_ < 1e-6) {
    warnings.push_back("coupling coefficient " + std::to_string(coupling_) +
                       " is vanishingly small -- windings are effectively uncoupled");
  }
}

}  // namespace ironic::spice
