#include "src/spice/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ironic::spice {

TransientResult::TransientResult(std::vector<std::string> names,
                                 std::vector<std::size_t> recorded_indices)
    : names_(std::move(names)), recorded_indices_(std::move(recorded_indices)) {
  if (names_.size() != recorded_indices_.size()) {
    throw std::invalid_argument("TransientResult: name/index count mismatch");
  }
  columns_.resize(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) index_.emplace(names_[i], i);
}

void TransientResult::append(double time, std::span<const double> x) {
  time_.push_back(time);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(x[recorded_indices_[c]]);
  }
}

void TransientResult::reserve(std::size_t points) {
  time_.reserve(points);
  for (auto& col : columns_) col.reserve(points);
}

bool TransientResult::has_signal(const std::string& name) const {
  return index_.count(name) > 0;
}

std::span<const double> TransientResult::column(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::invalid_argument("TransientResult: unknown signal '" + name + "'");
  }
  return columns_[it->second];
}

std::span<const double> TransientResult::signal(const std::string& name) const {
  return column(name);
}

std::span<const double> TransientResult::voltage(const std::string& node) const {
  return column("v(" + node + ")");
}

std::span<const double> TransientResult::current(const std::string& branch) const {
  return column("i(" + branch + ")");
}

double TransientResult::value_at(const std::string& name, double t) const {
  const auto ys = column(name);
  if (time_.empty()) throw std::runtime_error("TransientResult: no data");
  if (t <= time_.front()) return ys.front();
  if (t >= time_.back()) return ys.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - time_.begin());
  const std::size_t lo = hi - 1;
  const double u = (t - time_[lo]) / (time_[hi] - time_[lo]);
  return ys[lo] + (ys[hi] - ys[lo]) * u;
}

void TransientResult::window_indices(double t0, double t1, std::size_t& lo,
                                     std::size_t& hi) const {
  lo = static_cast<std::size_t>(
      std::lower_bound(time_.begin(), time_.end(), t0) - time_.begin());
  hi = static_cast<std::size_t>(
      std::upper_bound(time_.begin(), time_.end(), t1) - time_.begin());
  if (lo >= hi) throw std::invalid_argument("TransientResult: empty window");
}

double TransientResult::min_between(const std::string& name, double t0, double t1) const {
  const auto ys = column(name);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  return *std::min_element(ys.begin() + lo, ys.begin() + hi);
}

double TransientResult::max_between(const std::string& name, double t0, double t1) const {
  const auto ys = column(name);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  return *std::max_element(ys.begin() + lo, ys.begin() + hi);
}

double TransientResult::mean_between(const std::string& name, double t0, double t1) const {
  const auto ys = column(name);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  if (hi - lo < 2) return ys[lo];
  // Trapezoidal time average (robust to non-uniform steps).
  double area = 0.0;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    area += 0.5 * (ys[i] + ys[i - 1]) * (time_[i] - time_[i - 1]);
  }
  return area / (time_[hi - 1] - time_[lo]);
}

double TransientResult::rms_between(const std::string& name, double t0, double t1) const {
  const auto ys = column(name);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  if (hi - lo < 2) return std::abs(ys[lo]);
  double area = 0.0;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double y2 = 0.5 * (ys[i] * ys[i] + ys[i - 1] * ys[i - 1]);
    area += y2 * (time_[i] - time_[i - 1]);
  }
  return std::sqrt(area / (time_[hi - 1] - time_[lo]));
}

double TransientResult::peak_abs_between(const std::string& name, double t0,
                                         double t1) const {
  const auto ys = column(name);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  double best = 0.0;
  for (std::size_t i = lo; i < hi; ++i) best = std::max(best, std::abs(ys[i]));
  return best;
}

double TransientResult::mean_product_between(const std::string& name,
                                             const std::string& other, double t0,
                                             double t1) const {
  const auto ya = column(name);
  const auto yb = column(other);
  std::size_t lo, hi;
  window_indices(t0, t1, lo, hi);
  if (hi - lo < 2) return ya[lo] * yb[lo];
  double area = 0.0;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double p1 = ya[i] * yb[i];
    const double p0 = ya[i - 1] * yb[i - 1];
    area += 0.5 * (p1 + p0) * (time_[i] - time_[i - 1]);
  }
  return area / (time_[hi - 1] - time_[lo]);
}

bool TransientResult::first_crossing(const std::string& name, double level, double after,
                                     bool rising, double& t_out) const {
  const auto ys = column(name);
  for (std::size_t i = 1; i < time_.size(); ++i) {
    if (time_[i] < after) continue;
    const double y0 = ys[i - 1];
    const double y1 = ys[i];
    const bool crossed =
        rising ? (y0 < level && y1 >= level) : (y0 > level && y1 <= level);
    if (crossed) {
      const double u = (level - y0) / (y1 - y0);
      t_out = time_[i - 1] + u * (time_[i] - time_[i - 1]);
      return true;
    }
  }
  return false;
}

std::vector<double> TransientResult::sample(const std::string& name,
                                            std::span<const double> times) const {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(value_at(name, t));
  return out;
}

void TransientResult::write_csv(std::ostream& os, std::vector<std::string> signals,
                                int decimate) const {
  if (decimate < 1) throw std::invalid_argument("write_csv: decimate must be >= 1");
  if (signals.empty()) signals = names_;
  std::vector<std::span<const double>> cols;
  cols.reserve(signals.size());
  for (const auto& name : signals) cols.push_back(column(name));

  os << "time";
  for (const auto& name : signals) os << ',' << name;
  os << '\n';
  char buf[32];
  for (std::size_t i = 0; i < time_.size(); i += static_cast<std::size_t>(decimate)) {
    std::snprintf(buf, sizeof(buf), "%.9g", time_[i]);
    os << buf;
    for (const auto& col : cols) {
      std::snprintf(buf, sizeof(buf), "%.9g", col[i]);
      os << ',' << buf;
    }
    os << '\n';
  }
}

}  // namespace ironic::spice
