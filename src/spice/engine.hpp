// Analysis engines: Newton-based DC operating point and transient.
//
// DC: plain Newton first, then gmin (shunt) stepping, then source
// stepping — the standard SPICE escalation ladder.
//
// Transient: fixed nominal step with breakpoint snapping (clock edges and
// envelope corners are hit exactly), Newton at each point, and automatic
// step halving/recovery when Newton fails to converge.
#pragma once

#include <string>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/linalg/solver.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/trace.hpp"

namespace ironic::spice {

// Process-wide default linear-solver backend, consulted when per-analysis
// options leave `solver` at kAuto. Lets CLI layers (sweep_runner and
// fault_runner's --solver flag) steer every solve in the process without
// threading a kind through each config struct. Defaults to kAuto (size
// heuristic, see linalg::resolve_solver_kind).
void set_default_solver_kind(linalg::SolverKind kind);
linalg::SolverKind default_solver_kind();
// options-level kind if explicit, else the process default.
linalg::SolverKind effective_solver_kind(linalg::SolverKind from_options);

struct NewtonOptions {
  int max_iterations = 150;
  double reltol = 1e-4;    // relative tolerance on unknown updates
  double vntol = 1e-6;     // absolute voltage tolerance [V]
  double abstol = 1e-9;    // absolute current tolerance [A]
  double gmin = 1e-12;     // junction floor conductance [S]
  double gshunt = 1e-12;   // node-to-ground leak, keeps matrices regular [S]
  double max_update = 5.0; // Newton damping: clamp ||dx||_inf to this
};

struct DcOptions {
  NewtonOptions newton;
  bool gmin_stepping = true;
  bool source_stepping = true;
  // Linear-solver backend; kAuto defers to the process default, then the
  // size heuristic.
  linalg::SolverKind solver = linalg::SolverKind::kAuto;
  // Run the netlist linter (see src/spice/lint.hpp) before solving and
  // throw CircuitValidationError on error diagnostics, so misconfigured
  // circuits fail with a named rule instead of a Newton non-convergence.
  bool validate = true;
};

struct DcResult {
  linalg::Vector x;
  bool converged = false;
  int total_iterations = 0;
  std::string strategy;  // "newton", "gmin-stepping", "source-stepping"
};

// Solve the DC operating point. Throws std::invalid_argument on malformed
// circuits; returns converged == false if all strategies fail.
DcResult solve_dc(Circuit& circuit, const DcOptions& options = {});

// A resumable snapshot of a transient run: the accepted solution, the
// concatenated device integration state (Device::save_state, device
// order), and the step-control variables. Captured at breakpoint-snapped
// accepted points, at the checkpoint interval, and at the final point.
// Resuming is bit-exact: the tail of a resumed run equals the tail of an
// uninterrupted run sample for sample, because every loop variable that
// influences step selection is part of the snapshot.
struct TransientCheckpoint {
  double time = -1.0;
  double dt = 0.0;                   // next-step size in effect at capture
  std::vector<double> x;             // accepted solution at `time`
  std::vector<double> device_state;  // Device::save_state blobs, device order
  // Step-control state needed for bit-exact resume.
  int success_streak = 0;
  std::size_t step_index = 0;        // accepted steps since t = 0 (record phase)
  std::vector<double> x_prev;        // LTE predictor history (adaptive mode)
  double dt_prev = 0.0;
  bool have_prev_point = false;

  bool valid() const { return time >= 0.0 && !x.empty(); }
};

struct TransientOptions {
  double t_stop = 1e-3;
  // Nominal step (engine may shorten, never exceed). 0 = auto: use the
  // circuit's timescale-analysis hint (Circuit::dt_hint) when one is
  // installed, else 1 us. Negative values are rejected.
  double dt_max = 0.0;
  double dt_min = 0.0;      // 0 -> dt_max / 65536
  Integrator integrator = Integrator::kTrapezoidal;
  bool start_from_dc = false;  // false: use-initial-conditions (x = 0 + device ICs)
  NewtonOptions newton;
  // Record every k-th accepted point. Guarantee: points the engine
  // snapped to a stimulus breakpoint (clock edges, envelope corners) and
  // the final point are ALWAYS recorded, regardless of the decimation
  // phase — decimation must never hide the exact instants the waveforms
  // were shaped around. (Points before `record_start` are still
  // suppressed.)
  int record_every = 1;
  std::vector<std::string> record_signals;  // empty -> all signals
  double record_start = 0.0;              // suppress recording before this time
  // Local-truncation-error step control: compare each solution against a
  // linear extrapolation of the previous two points and shrink/grow the
  // step to hold the discrepancy near `lte_tol` (per-unknown, in volts/
  // amps). dt never exceeds dt_max, so breakpoint snapping still works.
  bool adaptive = false;
  double lte_tol = 1e-3;
  // Linear-solver backend, as in DcOptions::solver.
  linalg::SolverKind solver = linalg::SolverKind::kAuto;
  // Pre-run static validation, as in DcOptions::validate (transient
  // context: DC-only hazards like inductor loops stay warnings).
  bool validate = true;
  // --- checkpoint/restart (DESIGN.md §10) ----------------------------------
  // When non-null, the engine overwrites *checkpoint at every accepted
  // breakpoint-snapped step, every `checkpoint_interval` seconds of
  // simulated time (0 = breakpoints and final point only), and at the
  // final accepted point. Checkpointed points carry the same recording
  // guarantee as breakpoint-snapped ones.
  TransientCheckpoint* checkpoint = nullptr;
  double checkpoint_interval = 0.0;
  // When valid, resume from this snapshot instead of t = 0: solution,
  // device history, and step control are restored, initialization is
  // skipped, and only points after resume_from->time are recorded (the
  // checkpointed point itself was recorded by the run that captured it).
  const TransientCheckpoint* resume_from = nullptr;
};

struct TransientStats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;       // Newton failures + LTE rejections
  std::size_t newton_iterations = 0;
  // Numeric LU factorizations actually performed, and triangular solves.
  // Every Newton iteration solves once, but the solver layer skips
  // factoring when the assembled values are bit-identical to the matrix
  // it just factored (linear circuits at a fixed step), so
  // factorizations <= solves == newton_iterations.
  std::size_t factorizations = 0;
  std::size_t solves = 0;
  std::size_t breakpoint_hits = 0;      // accepted steps snapped to a breakpoint
  std::size_t lte_rejections = 0;       // subset of rejected_steps (adaptive mode)
  std::size_t max_newton_iterations = 0;  // worst single step attempt
  double wall_seconds = 0.0;            // wall time of the whole run
};

// Run a transient analysis. Throws std::runtime_error if the step size
// underflows dt_min without convergence.
TransientResult run_transient(Circuit& circuit, const TransientOptions& options,
                              TransientStats* stats = nullptr);

}  // namespace ironic::spice
