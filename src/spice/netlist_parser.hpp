// SPICE-style netlist parser: build a Circuit from text.
//
// Grammar (one element per line, case-insensitive, '*' comments,
// values accept f/p/n/u/m/k/meg/g suffixes):
//
//   R<name> n+ n- <value>
//   C<name> n+ n- <value> [IC=<v>]
//   L<name> n+ n- <value> [ESR=<r>] [IC=<i>]
//   K<name> L<a> L<b> <k>                     ; merges the two inductors
//   V<name> n+ n- DC <v> | SIN(<off> <amp> <freq>) |
//                  PULSE(<v1> <v2> <delay> <rise> <fall> <width> <period>) |
//                  PWL(<t1> <v1> <t2> <v2> ...)
//   I<name> n+ n- <same stimulus forms>
//   D<name> anode cathode [IS=<a>] [N=<n>] [BV=<v>]
//   M<name> d g s b NMOS|PMOS [W=<m>] [L=<m>] [VT0=<v>] [KP=<a/v2>]
//   S<name> n+ n- cp cn [RON=] [ROFF=] [VON=] [VOFF=]
//   E<name> n+ n- cp cn <gain>                ; VCVS
//   G<name> n+ n- cp cn <gm>                  ; VCCS
//   X<name> out inp inn OPAMP [GAIN=] [VMIN=] [VMAX=]
//   X<name> n1 n2 ... <subckt-name>           ; user subcircuit instance
//   .SUBCKT <name> p1 p2 ...                  ; subcircuit definition ...
//   .ENDS                                     ; ... ends here
//   .END                                      ; optional terminator
//
// Subcircuit bodies may contain any element (including nested X
// instances of previously defined subcircuits). Internal nodes are
// privatized as "<instance>.<node>"; element names are prefixed the same
// way, so a subcircuit can be instantiated many times.
//
// Node "0" (or gnd) is ground. Throws NetlistError with the line number
// on any malformed input.
#pragma once

#include <stdexcept>
#include <string>

#include "src/spice/circuit.hpp"

namespace ironic::spice {

struct NetlistError : std::runtime_error {
  NetlistError(int line, const std::string& what)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  int line_number;
};

// Parse `text` into `circuit` (appending to whatever it already holds).
// Returns the number of devices created.
int parse_netlist(Circuit& circuit, const std::string& text);

// Parse a single SPICE value token ("10n", "4.7k", "2meg", "1e-6").
// Throws std::invalid_argument on garbage.
double parse_spice_value(const std::string& token);

}  // namespace ironic::spice
