// Time-domain stimulus waveforms for independent sources.
//
// A Waveform is a value object evaluated at arbitrary times by the
// transient engine. Waveforms with discontinuities or corners publish
// *breakpoints* so the engine can place time steps exactly on them —
// essential for clocks (the demodulator's two-phase clock) and for the
// ASK bit envelope.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/util/interp.hpp"

namespace ironic::spice {

class WaveformImpl {
 public:
  virtual ~WaveformImpl() = default;
  virtual double value(double t) const = 0;
  // Append all breakpoints in [t0, t1] to `out`.
  virtual void breakpoints(double t0, double t1, std::vector<double>& out) const;
  // Static range of the waveform over all time, for the interval
  // envelope analysis. Returns false when no finite bound is known
  // (e.g. an arbitrary custom function).
  virtual bool value_range(double& lo, double& hi) const;
  // Smallest intrinsic timescale (period, edge time, segment length);
  // 0 when the waveform has none (DC, unknown custom).
  virtual double min_timescale() const;
};

// Value-semantics handle. Copyable; shares the immutable implementation.
class Waveform {
 public:
  Waveform();  // DC 0
  explicit Waveform(std::shared_ptr<const WaveformImpl> impl) : impl_(std::move(impl)) {}

  double operator()(double t) const { return impl_->value(t); }
  void breakpoints(double t0, double t1, std::vector<double>& out) const {
    impl_->breakpoints(t0, t1, out);
  }
  bool value_range(double& lo, double& hi) const {
    return impl_->value_range(lo, hi);
  }
  double min_timescale() const { return impl_->min_timescale(); }

  // --- factories ---------------------------------------------------------

  // Constant value.
  static Waveform dc(double value);

  // amplitude * sin(2 pi f (t - delay) + phase) + offset, 0 before delay.
  static Waveform sine(double amplitude, double frequency, double offset = 0.0,
                       double delay = 0.0, double phase_rad = 0.0);

  // SPICE-style pulse: v1 -> v2 with the given delay, rise, fall, width,
  // and period (period <= 0 means single-shot).
  static Waveform pulse(double v1, double v2, double delay, double rise, double fall,
                        double width, double period);

  // Piecewise-linear; breakpoints at each corner.
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  // Carrier sine whose amplitude is scaled by a piecewise-linear envelope:
  // v(t) = envelope(t) * sin(2 pi f t + phase). This is the ASK stimulus.
  static Waveform modulated_sine(double frequency, util::PiecewiseLinear envelope,
                                 double phase_rad = 0.0);

  // Arbitrary function with optional explicit breakpoints.
  static Waveform custom(std::function<double(double)> fn,
                         std::vector<double> breakpoints = {});

 private:
  std::shared_ptr<const WaveformImpl> impl_;
};

// Convenience: a 50 %-duty square clock between v_lo and v_hi with the
// given frequency, phase delay, and edge time.
Waveform square_clock(double v_lo, double v_hi, double frequency, double delay,
                      double edge_time);

}  // namespace ironic::spice
