#include "src/spice/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/log.hpp"

namespace ironic::spice {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kResistor: return "resistor";
    case DeviceKind::kCapacitor: return "capacitor";
    case DeviceKind::kInductor: return "inductor";
    case DeviceKind::kCoupledInductors: return "coupled-inductors";
    case DeviceKind::kVoltageSource: return "voltage-source";
    case DeviceKind::kCurrentSource: return "current-source";
    case DeviceKind::kVcvs: return "vcvs";
    case DeviceKind::kVccs: return "vccs";
    case DeviceKind::kDiode: return "diode";
    case DeviceKind::kMosfet: return "mosfet";
    case DeviceKind::kSwitch: return "switch";
    case DeviceKind::kOpAmp: return "opamp";
    case DeviceKind::kOther: break;
  }
  return "other";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = std::string(severity_name(severity)) + "[" + rule_id + "]";
  if (!device.empty()) out += " " + device;
  if (!node.empty()) out += (device.empty() ? " node '" : " (node '") + node +
                            (device.empty() ? "'" : "')");
  out += ": " + message;
  return out;
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t LintReport::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

std::string LintReport::to_text() const {
  if (diagnostics.empty()) return "";
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << "\n";
  os << errors() << " error(s), " << warnings() << " warning(s)\n";
  return os.str();
}

std::string LintReport::to_json() const {
  using obs::json::Value;
  Value::Array items;
  for (const auto& d : diagnostics) {
    Value::Object o;
    o["severity"] = severity_name(d.severity);
    o["rule"] = d.rule_id;
    if (!d.device.empty()) o["device"] = d.device;
    if (!d.node.empty()) o["node"] = d.node;
    o["message"] = d.message;
    items.emplace_back(std::move(o));
  }
  Value::Object root;
  root["errors"] = static_cast<std::uint64_t>(errors());
  root["warnings"] = static_cast<std::uint64_t>(warnings());
  root["diagnostics"] = std::move(items);
  return Value(std::move(root)).dump(2);
}

namespace {

// Union-find over node indices (ground mapped to the extra slot `n`).
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  }
  // Returns false if a and b were already connected (a cycle closes).
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[static_cast<std::size_t>(a)] = b;
    return true;
  }
  bool same(int a, int b) { return find(a) == find(b); }
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string join_names(const std::vector<std::string>& names, std::size_t limit) {
  std::string out;
  for (std::size_t i = 0; i < names.size() && i < limit; ++i) {
    if (i > 0) out += ", ";
    out += "'" + names[i] + "'";
  }
  if (names.size() > limit) {
    out += ", ... (" + std::to_string(names.size() - limit) + " more)";
  }
  return out;
}

struct LintMetrics {
  obs::Counter& runs;
  obs::Counter& errors_total;
  obs::Counter& warnings_total;
  obs::Gauge& last_errors;
  obs::Gauge& last_warnings;

  static LintMetrics& get() {
    static LintMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return LintMetrics{
          r.counter("spice.lint.runs"),
          r.counter("spice.lint.errors_total"),
          r.counter("spice.lint.warnings_total"),
          r.gauge("spice.lint.last_errors"),
          r.gauge("spice.lint.last_warnings"),
      };
    }();
    return m;
  }
};

// Magnitude plausibility bands per device kind (suspected unit-suffix
// mistakes land orders of magnitude outside these).
struct Band {
  double lo, hi;
  const char* unit;
  const char* range_text;
};

const Band* magnitude_band(DeviceKind kind) {
  static const Band kResistorBand{1e-3, 5e7, "Ohm", "[1 mOhm, 50 MOhm]"};
  static const Band kCapacitorBand{1e-16, 1e-1, "F", "[0.1 fF, 100 mF]"};
  static const Band kInductorBand{1e-12, 1e2, "H", "[1 pH, 100 H]"};
  switch (kind) {
    case DeviceKind::kResistor: return &kResistorBand;
    case DeviceKind::kCapacitor: return &kCapacitorBand;
    case DeviceKind::kInductor: return &kInductorBand;
    default: return nullptr;
  }
}

}  // namespace

LintReport lint(const Circuit& circuit, const LintOptions& options) {
  LintReport report;
  const auto emit = [&report](Severity sev, std::string rule, std::string device,
                              std::string node, std::string message) {
    report.diagnostics.push_back(Diagnostic{sev, std::move(rule), std::move(device),
                                            std::move(node), std::move(message)});
  };

  const std::size_t num_nodes = circuit.num_nodes();
  const int ground_slot = static_cast<int>(num_nodes);
  const auto slot = [ground_slot](NodeId n) {
    return n == kGround ? ground_slot : static_cast<int>(n);
  };

  // Reflection snapshot, taken once.
  struct Entry {
    const Device* device;
    DeviceInfo info;
  };
  std::vector<Entry> entries;
  entries.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) {
    entries.push_back(Entry{dev.get(), dev->info()});
  }

  // --- per-node terminal census -----------------------------------------
  std::vector<int> terminal_count(num_nodes, 0);
  bool ground_touched = false;
  for (const auto& e : entries) {
    for (const auto& t : e.info.terminals) {
      if (t.node == kGround) {
        ground_touched = true;
      } else {
        ++terminal_count[static_cast<std::size_t>(t.node)];
      }
    }
  }

  // lint.ground-missing
  if (!entries.empty() && !ground_touched) {
    emit(Severity::kWarning, "lint.ground-missing", "", "",
         "no device terminal connects to ground (node 0); every node voltage "
         "is defined only through the gshunt regularization");
  }

  // lint.dangling-node: registered but unreferenced nodes (API misuse).
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (terminal_count[n] == 0) {
      emit(Severity::kWarning, "lint.dangling-node", "",
           circuit.node_name(static_cast<NodeId>(n)),
           "node is registered but no device terminal connects to it");
    }
  }

  // lint.duplicate-name: case-insensitive collisions. Exact duplicates are
  // rejected at Circuit::add time, so anything found here is an alias pair
  // like "R1" vs "r1" -- legal, but a trap for netlist round-trips (the
  // parser lowercases names).
  {
    std::map<std::string, std::vector<std::string>> by_folded;
    for (const auto& e : entries) {
      by_folded[lower(e.device->name())].push_back(e.device->name());
    }
    for (const auto& [folded, originals] : by_folded) {
      if (originals.size() > 1) {
        emit(Severity::kWarning, "lint.duplicate-name", originals.front(), "",
             "device names " + join_names(originals, 8) +
                 " collide case-insensitively; netlist round-trips cannot "
                 "distinguish them");
      }
    }
  }

  // lint.bad-value / lint.param-range: per-device model parameter checks.
  for (const auto& e : entries) {
    std::vector<std::string> errors, warnings;
    e.device->check_params(errors, warnings);
    for (const auto& msg : errors) {
      emit(Severity::kError, "lint.bad-value", e.device->name(), "", msg);
    }
    for (const auto& msg : warnings) {
      emit(Severity::kWarning, "lint.param-range", e.device->name(), "", msg);
    }
  }

  // lint.magnitude: unit-suffix plausibility for the primary R/C/L value.
  if (options.magnitude_checks) {
    for (const auto& e : entries) {
      if (!e.info.has_value || e.info.value <= 0.0) continue;
      const Band* band = magnitude_band(e.info.kind);
      if (band == nullptr) continue;
      if (e.info.value < band->lo || e.info.value > band->hi) {
        std::ostringstream msg;
        msg << device_kind_name(e.info.kind) << " value " << e.info.value << " "
            << band->unit << " is far outside the plausible range " << band->range_text
            << " -- suspected unit-suffix mistake";
        emit(Severity::kWarning, "lint.magnitude", e.device->name(), "", msg.str());
      }
    }
  }

  // lint.shorted-device: every terminal of a multi-terminal device on one
  // node. (Rigid devices shorted onto themselves are reported as
  // voltage loops below instead.)
  for (const auto& e : entries) {
    if (e.info.terminals.size() < 2 || !e.info.rigid_pairs.empty()) continue;
    const NodeId first = e.info.terminals.front().node;
    const bool all_same = std::all_of(e.info.terminals.begin(), e.info.terminals.end(),
                                      [first](const Terminal& t) { return t.node == first; });
    if (all_same) {
      emit(Severity::kWarning, "lint.shorted-device", e.device->name(),
           circuit.node_name(first),
           "every terminal connects to the same node; the device has no effect");
    }
  }

  // lint.dangling-terminal: a non-ground node referenced by exactly one
  // terminal is a dead-end branch.
  for (const auto& e : entries) {
    for (const auto& t : e.info.terminals) {
      if (t.node == kGround) continue;
      if (terminal_count[static_cast<std::size_t>(t.node)] == 1) {
        emit(Severity::kWarning, "lint.dangling-terminal", e.device->name(),
             circuit.node_name(t.node),
             "terminal '" + t.label + "' is the only connection to this node; "
             "the branch dead-ends");
      }
    }
  }

  // --- DC connectivity: floating nodes & current cutsets -----------------
  // Union nodes joined by in-device DC conduction groups, then inspect the
  // components that ended up disconnected from ground.
  {
    Dsu dc(num_nodes + 1);
    for (const auto& e : entries) {
      std::vector<std::vector<std::size_t>> groups = e.info.dc_groups;
      if (groups.empty()) {
        std::vector<std::size_t> all;
        for (std::size_t i = 0; i < e.info.terminals.size(); ++i) {
          if (e.info.terminals[i].dc == TerminalDc::kConducting) all.push_back(i);
        }
        if (all.size() >= 2) groups.push_back(std::move(all));
      }
      for (const auto& group : groups) {
        for (std::size_t i = 1; i < group.size(); ++i) {
          dc.unite(slot(e.info.terminals[group[0]].node),
                   slot(e.info.terminals[group[i]].node));
        }
      }
      // Devices that pin a terminal to ground (op-amp outputs) anchor it.
      for (std::size_t idx : e.info.rigid_to_ground) {
        dc.unite(slot(e.info.terminals[idx].node), ground_slot);
      }
    }

    // Floating components (skip if ground itself is untouched: the single
    // ground-missing diagnostic already covers the whole circuit).
    if (ground_touched) {
      std::map<int, std::vector<std::string>> floating;  // root -> node names
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (terminal_count[n] == 0) continue;  // already dangling-node
        const int root = dc.find(static_cast<int>(n));
        if (root != dc.find(ground_slot)) {
          floating[root].push_back(circuit.node_name(static_cast<NodeId>(n)));
        }
      }
      for (const auto& [root, names] : floating) {
        emit(Severity::kWarning, "lint.no-dc-path", "", names.front(),
             (names.size() == 1 ? "node " + join_names(names, 8) + " has"
                                : "nodes " + join_names(names, 8) + " have") +
                 " no DC path to ground; only the gshunt regularization pins " +
                 (names.size() == 1 ? std::string("its") : std::string("their")) +
                 " operating point");
      }
    }

    // Current sources whose terminals sit in a floating component: the
    // forced current has no return path. At DC the node voltage runs away
    // to I/gshunt (~1e12 V); in a transient it can be a deliberate
    // integrator charging a capacitor, hence the severity split.
    for (const auto& e : entries) {
      if (e.info.kind != DeviceKind::kCurrentSource && e.info.kind != DeviceKind::kVccs)
        continue;
      for (std::size_t i = 0; i < e.info.terminals.size() && i < 2; ++i) {
        const auto& t = e.info.terminals[i];
        if (t.node == kGround) continue;
        if (!dc.same(slot(t.node), ground_slot)) {
          emit(options.dc_context ? Severity::kError : Severity::kWarning,
               "lint.current-cutset", e.device->name(), circuit.node_name(t.node),
               "forced current through terminal '" + t.label +
                   "' has no DC return path to ground" +
                   (options.dc_context
                        ? "; the DC operating point diverges to I/gshunt"
                        : " (fine only if this is a deliberate integrator)"));
          break;  // one diagnostic per device is enough
        }
      }
    }
  }

  // --- ideal-voltage loops ------------------------------------------------
  // Pass A: truly rigid branches (voltage sources, VCVS outputs, op-amp
  // output-to-ground pins). A closed cycle means linearly dependent MNA
  // rows: singular in every analysis.
  {
    Dsu rigid(num_nodes + 1);
    for (const auto& e : entries) {
      const bool inductive = e.info.kind == DeviceKind::kInductor ||
                             e.info.kind == DeviceKind::kCoupledInductors;
      if (inductive) continue;
      for (const auto& [ia, ib] : e.info.rigid_pairs) {
        if (!rigid.unite(slot(e.info.terminals[ia].node), slot(e.info.terminals[ib].node))) {
          emit(Severity::kError, "lint.voltage-loop", e.device->name(),
               circuit.node_name(e.info.terminals[ia].node),
               "closes a loop of ideal-voltage branches between '" +
                   circuit.node_name(e.info.terminals[ia].node) + "' and '" +
                   circuit.node_name(e.info.terminals[ib].node) +
                   "'; the MNA matrix is singular in every analysis");
        }
      }
      for (std::size_t idx : e.info.rigid_to_ground) {
        if (!rigid.unite(slot(e.info.terminals[idx].node), ground_slot)) {
          emit(Severity::kError, "lint.voltage-loop", e.device->name(),
               circuit.node_name(e.info.terminals[idx].node),
               "output is pinned to a node whose voltage is already fixed by "
               "other ideal-voltage branches");
        }
      }
    }

    // Pass B: ideal inductor windings close the remaining DC shorts. Only
    // the DC operating point sees them as rigid (transient companion
    // models give them finite conductance), hence the context-dependent
    // severity.
    for (const auto& e : entries) {
      const bool inductive = e.info.kind == DeviceKind::kInductor ||
                             e.info.kind == DeviceKind::kCoupledInductors;
      if (!inductive) continue;
      for (const auto& [ia, ib] : e.info.rigid_pairs) {
        if (!rigid.unite(slot(e.info.terminals[ia].node), slot(e.info.terminals[ib].node))) {
          emit(options.dc_context ? Severity::kError : Severity::kWarning,
               "lint.inductor-loop", e.device->name(),
               circuit.node_name(e.info.terminals[ia].node),
               std::string("ESR-free winding closes a DC short-circuit loop between '") +
                   circuit.node_name(e.info.terminals[ia].node) + "' and '" +
                   circuit.node_name(e.info.terminals[ib].node) + "'" +
                   (options.dc_context
                        ? "; the DC operating point is singular (give the winding "
                          "an ESR or skip start_from_dc)"
                        : " (the DC operating point would be singular; transient "
                          "companion models regularize it)"));
        }
      }
    }
  }

  if constexpr (obs::kEnabled) {
    auto& m = LintMetrics::get();
    m.runs.add();
    m.errors_total.add(report.errors());
    m.warnings_total.add(report.warnings());
    m.last_errors.set(static_cast<double>(report.errors()));
    m.last_warnings.set(static_cast<double>(report.warnings()));
  }
  return report;
}

CircuitValidationError::CircuitValidationError(LintReport r)
    : std::invalid_argument("circuit failed static validation:\n" + r.to_text()),
      report(std::move(r)) {}

LintReport validate(const Circuit& circuit, const LintOptions& options) {
  LintReport report = lint(circuit, options);
  if (!report.ok()) {
    util::Log::event(util::LogLevel::kError, "spice.lint",
                     {{"event", "validation_failed"},
                      {"errors", std::to_string(report.errors())},
                      {"warnings", std::to_string(report.warnings())}});
    throw CircuitValidationError(std::move(report));
  }
  return report;
}

}  // namespace ironic::spice
