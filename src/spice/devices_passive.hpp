// Linear passive elements: resistor, capacitor, inductor, coupled coils.
//
// Reactive elements use companion models: backward Euler on the first
// step after initialization (no history yet), then the integrator the
// engine selects (trapezoidal by default).
#pragma once

#include "src/spice/circuit.hpp"
#include "src/spice/device.hpp"

namespace ironic::spice {

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  double resistance() const { return resistance_; }
  void set_resistance(double r);
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId a_, b_;
  double resistance_;
};

class Capacitor final : public Device {
 public:
  // `initial_voltage` seeds the companion state when the transient starts
  // from initial conditions rather than a DC operating point.
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance,
            double initial_voltage = 0.0);
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void initialize(std::span<const double> x0) override;
  void accept_step(std::span<const double> x, double time, double dt,
                   Integrator integrator) override;
  void save_state(std::vector<double>& out) const override;
  std::size_t restore_state(std::span<const double> in) override;
  double capacitance() const { return capacitance_; }
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  double branch_voltage(std::span<const double> x) const;

  NodeId a_, b_;
  double capacitance_;
  double ic_;
  double v_state_ = 0.0;  // voltage at last accepted point
  double i_state_ = 0.0;  // current at last accepted point (trap history)
  bool has_history_ = false;
};

class Inductor final : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance,
           double series_resistance = 0.0, double initial_current = 0.0);
  void setup(Circuit& ckt) override;
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void initialize(std::span<const double> x0) override;
  void accept_step(std::span<const double> x, double time, double dt,
                   Integrator integrator) override;
  void save_state(std::vector<double>& out) const override;
  std::size_t restore_state(std::span<const double> in) override;
  double inductance() const { return inductance_; }
  double esr() const { return esr_; }
  int branch_index() const { return branch_; }
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId a_, b_;
  double inductance_;
  double esr_;
  double ic_;
  int branch_ = -1;
  double i_state_ = 0.0;  // current at last accepted point
  double v_state_ = 0.0;  // inductive voltage L di/dt at last accepted point
  bool has_history_ = false;
};

// Two magnetically coupled inductors (the inductive power/data link).
//
//   v1 = L1 di1/dt + M di2/dt + R1 i1
//   v2 = M  di1/dt + L2 di2/dt + R2 i2,  M = k sqrt(L1 L2)
//
// Branch currents are tracked for both windings; traces are named
// "i(<name>.p)" (primary) and "i(<name>.s)" (secondary).
class CoupledInductors final : public Device {
 public:
  CoupledInductors(std::string name, NodeId p1, NodeId p2, NodeId s1, NodeId s2,
                   double l_primary, double l_secondary, double coupling,
                   double r_primary = 0.0, double r_secondary = 0.0);
  void setup(Circuit& ckt) override;
  void stamp(StampContext& ctx) override;
  void stamp_ac(AcStampContext& ctx) const override;
  void initialize(std::span<const double> x0) override;
  void accept_step(std::span<const double> x, double time, double dt,
                   Integrator integrator) override;
  void save_state(std::vector<double>& out) const override;
  std::size_t restore_state(std::span<const double> in) override;

  double mutual() const { return mutual_; }
  double coupling() const { return coupling_; }
  double l_primary() const { return l1_; }
  double l_secondary() const { return l2_; }
  double r_primary() const { return r1_; }
  double r_secondary() const { return r2_; }
  // Retune the link (e.g. a distance change between transient runs).
  void set_coupling(double coupling);
  int primary_branch() const { return bp_; }
  int secondary_branch() const { return bs_; }
  DeviceInfo info() const override;
  void check_params(std::vector<std::string>& errors,
                    std::vector<std::string>& warnings) const override;

 private:
  NodeId p1_, p2_, s1_, s2_;
  double l1_, l2_, coupling_, mutual_, r1_, r2_;
  int bp_ = -1, bs_ = -1;
  double i1_state_ = 0.0, i2_state_ = 0.0;
  double v1_state_ = 0.0, v2_state_ = 0.0;  // inductive (flux) voltages
  bool has_history_ = false;
};

}  // namespace ironic::spice
