#include "src/spice/circuit.hpp"

namespace ironic::spice {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_ids_.emplace(name, id);
  node_names_.push_back(name);
  finalized_ = false;
  ++revision_;
  return id;
}

NodeId Circuit::internal_node(const std::string& hint) {
  return node("__" + hint + "#" + std::to_string(internal_counter_++));
}

NodeId Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw std::invalid_argument("Circuit::find_node: unknown node '" + name + "'");
  }
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return true;
  return node_ids_.count(name) > 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  static const std::string kGroundName = "0";
  if (id == kGround) return kGroundName;
  return node_names_.at(static_cast<std::size_t>(id));
}

void Circuit::register_device(std::unique_ptr<Device> device) {
  if (device_index_.count(device->name()) > 0) {
    throw std::invalid_argument("Circuit: duplicate device name '" + device->name() + "'");
  }
  device_index_.emplace(device->name(), device.get());
  devices_.push_back(std::move(device));
  finalized_ = false;
  ++revision_;
}

Device* Circuit::find_device(const std::string& name) {
  const auto it = device_index_.find(name);
  return it == device_index_.end() ? nullptr : it->second;
}

void Circuit::finalize() {
  branch_labels_.clear();
  for (const auto& device : devices_) device->setup(*this);
  finalized_ = true;
}

int Circuit::allocate_branch(const std::string& label) {
  const int index = static_cast<int>(num_nodes() + branch_labels_.size());
  branch_labels_.push_back(label);
  return index;
}

linalg::LinearSolver& Circuit::acquire_solver(linalg::SolverKind kind) {
  const std::size_t n = num_unknowns();
  // The static-analysis hint refines kAuto only; explicit requests win.
  if (kind == linalg::SolverKind::kAuto && solver_hint_ != linalg::SolverKind::kAuto) {
    kind = solver_hint_;
  }
  const linalg::SolverKind resolved = linalg::resolve_solver_kind(kind, n);
  if (!solver_ || solver_->size() != n || solver_->kind() != resolved) {
    solver_ = linalg::make_solver(resolved, n);
  }
  return *solver_;
}

linalg::ComplexLinearSolver& Circuit::acquire_complex_solver(linalg::SolverKind kind) {
  const std::size_t n = num_unknowns();
  const linalg::SolverKind resolved = linalg::resolve_solver_kind(kind, n);
  if (!complex_solver_ || complex_solver_->size() != n ||
      complex_solver_->kind() != resolved) {
    complex_solver_ = linalg::make_complex_solver(resolved, n);
  }
  return *complex_solver_;
}

std::vector<std::string> Circuit::signal_names() const {
  std::vector<std::string> names;
  names.reserve(num_unknowns());
  for (const auto& node : node_names_) names.push_back("v(" + node + ")");
  for (const auto& branch : branch_labels_) names.push_back("i(" + branch + ")");
  return names;
}

}  // namespace ironic::spice
