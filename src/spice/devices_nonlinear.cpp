#include "src/spice/devices_nonlinear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/constants.hpp"

namespace ironic::spice {
namespace {

// Classic SPICE pn-junction limiting: keep Newton from overshooting the
// diode exponential. `vt` is n kT/q, `vcrit` the critical voltage.
double pnjlim(double v_new, double v_old, double vt, double vcrit) {
  if (v_new > vcrit && std::abs(v_new - v_old) > 2.0 * vt) {
    if (v_old > 0.0) {
      const double arg = 1.0 + (v_new - v_old) / vt;
      return arg > 0.0 ? v_old + vt * std::log(arg) : vcrit;
    }
    return vt * std::log(v_new / vt);
  }
  return v_new;
}

// Diode current and conductance at junction voltage v.
struct JunctionEval {
  double i = 0.0;
  double g = 0.0;
};

JunctionEval eval_junction(double v, double is, double vt) {
  JunctionEval out;
  if (v >= -5.0 * vt) {
    const double e = std::exp(std::min(v / vt, 80.0));
    out.i = is * (e - 1.0);
    out.g = is / vt * e;
  } else {
    // Deep reverse: flat leakage with a tiny slope for Newton stability.
    out.g = is / vt * std::exp(-5.0);
    out.i = -is + out.g * (v + 5.0 * vt);
  }
  return out;
}

// Adds reverse-breakdown conduction below -bv to a junction evaluation.
JunctionEval eval_junction_with_breakdown(double v, const DiodeParams& p, double vt) {
  JunctionEval out = eval_junction(v, p.saturation_current, vt);
  if (p.breakdown_voltage > 0.0) {
    const double arg = std::min(-(v + p.breakdown_voltage) / vt, 80.0);
    const double e = std::exp(arg);
    out.i -= p.breakdown_is * e;
    out.g += p.breakdown_is / vt * e;
  }
  return out;
}

}  // namespace

// -------------------------------------------------------------------- Diode

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {
  if (params_.saturation_current <= 0.0) {
    throw std::invalid_argument("Diode: saturation current must be > 0");
  }
  vt_n_ = params_.emission_coeff * constants::thermal_voltage(params_.temperature);
  vcrit_ = vt_n_ * std::log(vt_n_ / (std::sqrt(2.0) * params_.saturation_current));
}

double Diode::current(double v) const {
  return eval_junction_with_breakdown(v, params_, vt_n_).i;
}

void Diode::start_step(double /*time*/, double /*dt*/) { have_prev_ = false; }

void Diode::stamp_ac(AcStampContext& ctx) const {
  const double v = ctx.v_op(anode_) - ctx.v_op(cathode_);
  const JunctionEval j = eval_junction_with_breakdown(v, params_, vt_n_);
  ac_admittance(ctx, anode_, cathode_, {j.g + 1e-12, 0.0});
}

void Diode::stamp(StampContext& ctx) {
  const double v_raw = ctx.v(anode_) - ctx.v(cathode_);
  double v = v_raw;
  if (have_prev_) v = pnjlim(v, v_prev_, vt_n_, vcrit_);
  if (std::abs(v - v_raw) > 1e-9) ctx.limited = true;
  v_prev_ = v;
  have_prev_ = true;

  const JunctionEval j = eval_junction_with_breakdown(v, params_, vt_n_);
  const double g = j.g + ctx.gmin;
  const double i0 = j.i - j.g * v;  // companion current at zero volts
  stamp_conductance(ctx, anode_, cathode_, g);
  stamp_current(ctx, anode_, cathode_, i0);
}

// ------------------------------------------------------------------- Mosfet

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
               MosParams params)
    : Device(std::move(name)),
      d_(drain),
      g_(gate),
      s_(source),
      b_(bulk),
      params_(params),
      polarity_(params.type == MosType::kNmos ? 1.0 : -1.0) {
  if (params_.w <= 0.0 || params_.l <= 0.0) {
    throw std::invalid_argument("Mosfet: W and L must be > 0");
  }
}

void Mosfet::start_step(double /*time*/, double /*dt*/) {
  have_prev_ = false;
  have_bs_prev_ = false;
  have_bd_prev_ = false;
}

Mosfet::Operating Mosfet::evaluate(double vgs, double vds, double vbs) const {
  // All arguments are in the polarity frame with vds >= 0.
  Operating op;
  const double phi = params_.phi;
  const double vbs_clamped = std::min(vbs, phi - 0.02);
  const double sqrt_arg = std::sqrt(phi - vbs_clamped);
  const double vth = params_.vt0 + params_.gamma * (sqrt_arg - std::sqrt(phi));
  const double dvth_dvbs = -params_.gamma / (2.0 * sqrt_arg);
  const double vov = vgs - vth;
  if (vov <= 0.0) return op;  // cutoff: engine gmin keeps the node pinned

  const double beta = params_.beta();
  const double clm = 1.0 + params_.lambda * vds;
  if (vds >= vov) {
    // Saturation.
    op.ids = 0.5 * beta * vov * vov * clm;
    op.gm = beta * vov * clm;
    op.gds = 0.5 * beta * vov * vov * params_.lambda;
  } else {
    // Triode.
    op.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * params_.lambda;
  }
  // Body transconductance via the threshold-voltage chain rule.
  op.gmb = op.gm * (-dvth_dvbs);
  return op;
}

double Mosfet::drain_current(double vd, double vg, double vs, double vb) const {
  // Polarity frame.
  double fvd = polarity_ * vd;
  double fvg = polarity_ * vg;
  double fvs = polarity_ * vs;
  double fvb = polarity_ * vb;
  const bool swapped = fvd < fvs;
  if (swapped) std::swap(fvd, fvs);
  const Operating op = evaluate(fvg - fvs, fvd - fvs, fvb - fvs);
  const double ids = swapped ? -op.ids : op.ids;
  return polarity_ * ids;  // current into the drain terminal
}

void Mosfet::stamp_bulk_junction(StampContext& ctx, NodeId anode, NodeId cathode,
                                 double& v_prev, bool& have_prev) {
  const double vt = constants::thermal_voltage(300.15);
  const double vcrit = vt * std::log(vt / (std::sqrt(2.0) * params_.junction_is));
  const double v_raw = ctx.v(anode) - ctx.v(cathode);
  double v = v_raw;
  if (have_prev) v = pnjlim(v, v_prev, vt, vcrit);
  if (std::abs(v - v_raw) > 1e-9) ctx.limited = true;
  v_prev = v;
  have_prev = true;
  const JunctionEval j = eval_junction(v, params_.junction_is, vt);
  stamp_conductance(ctx, anode, cathode, j.g + ctx.gmin);
  stamp_current(ctx, anode, cathode, j.i - j.g * v);
}

void Mosfet::stamp(StampContext& ctx) {
  // Terminal voltages in the polarity frame.
  const double avd = ctx.v(d_), avg = ctx.v(g_), avs = ctx.v(s_), avb = ctx.v(b_);
  double fvd = polarity_ * avd;
  double fvg = polarity_ * avg;
  double fvs = polarity_ * avs;
  double fvb = polarity_ * avb;

  // Source/drain swap so the evaluated frame always has vds >= 0.
  NodeId nd = d_, ns = s_;
  if (fvd < fvs) {
    std::swap(fvd, fvs);
    std::swap(nd, ns);
  }
  double vgs = fvg - fvs;
  double vds = fvd - fvs;
  const double vbs = fvb - fvs;

  // Per-iteration limiting: bound the change of vgs/vds to 1 V.
  if (have_prev_) {
    const double vgs_raw = vgs;
    const double vds_raw = vds;
    vgs = vgs_prev_ + std::clamp(vgs - vgs_prev_, -1.0, 1.0);
    vds = vds_prev_ + std::clamp(vds - vds_prev_, -1.0, 1.0);
    if (std::abs(vgs - vgs_raw) > 1e-9 || std::abs(vds - vds_raw) > 1e-9) {
      ctx.limited = true;
    }
  }
  vgs_prev_ = vgs;
  vds_prev_ = vds;
  have_prev_ = true;

  const Operating op = evaluate(vgs, vds, vbs);

  // Linearized drain current around the (limited) evaluation point.
  // In actual node voltages the derivative columns are
  //   dI/dvg = gm, dI/dvd_eff = gds, dI/dvb = gmb, dI/dvs_eff = -(gm+gds+gmb),
  // and the constant companion term uses the limited frame voltages so the
  // stamp reproduces the evaluated current exactly at this iterate.
  const double gsum = op.gm + op.gds + op.gmb;

  add_a(ctx, nd, g_, op.gm);
  add_a(ctx, nd, nd, op.gds);
  add_a(ctx, nd, b_, op.gmb);
  add_a(ctx, nd, ns, -gsum);
  add_a(ctx, ns, g_, -op.gm);
  add_a(ctx, ns, nd, -op.gds);
  add_a(ctx, ns, b_, -op.gmb);
  add_a(ctx, ns, ns, gsum);

  const double i0 =
      polarity_ * (op.ids - op.gm * vgs - op.gds * vds - op.gmb * vbs);
  stamp_current(ctx, nd, ns, i0);

  // Convergence aid: a floor conductance across the channel.
  stamp_conductance(ctx, d_, s_, ctx.gmin);

  if (params_.bulk_diodes) {
    // NMOS: p-bulk to n-source/drain junctions (anode = bulk).
    // PMOS: n-bulk, junctions point the other way.
    if (params_.type == MosType::kNmos) {
      stamp_bulk_junction(ctx, b_, s_, vbs_j_prev_, have_bs_prev_);
      stamp_bulk_junction(ctx, b_, d_, vbd_j_prev_, have_bd_prev_);
    } else {
      stamp_bulk_junction(ctx, s_, b_, vbs_j_prev_, have_bs_prev_);
      stamp_bulk_junction(ctx, d_, b_, vbd_j_prev_, have_bd_prev_);
    }
  }
}

void Mosfet::stamp_ac(AcStampContext& ctx) const {
  // Small-signal conductances at the DC operating point, same frame and
  // swap logic as the large-signal stamp.
  double fvd = polarity_ * ctx.v_op(d_);
  const double fvg = polarity_ * ctx.v_op(g_);
  double fvs = polarity_ * ctx.v_op(s_);
  const double fvb = polarity_ * ctx.v_op(b_);
  NodeId nd = d_, ns = s_;
  if (fvd < fvs) {
    std::swap(fvd, fvs);
    std::swap(nd, ns);
  }
  const Operating op = evaluate(fvg - fvs, fvd - fvs, fvb - fvs);
  const double gsum = op.gm + op.gds + op.gmb;
  ac_add(ctx, nd, g_, {op.gm, 0.0});
  ac_add(ctx, nd, nd, {op.gds, 0.0});
  ac_add(ctx, nd, b_, {op.gmb, 0.0});
  ac_add(ctx, nd, ns, {-gsum, 0.0});
  ac_add(ctx, ns, g_, {-op.gm, 0.0});
  ac_add(ctx, ns, nd, {-op.gds, 0.0});
  ac_add(ctx, ns, b_, {-op.gmb, 0.0});
  ac_add(ctx, ns, ns, {gsum, 0.0});
  ac_admittance(ctx, d_, s_, {1e-12, 0.0});
  if (params_.bulk_diodes) {
    const double vt = constants::thermal_voltage(300.15);
    const auto stamp_junction = [&](NodeId anode, NodeId cathode) {
      const double v = ctx.v_op(anode) - ctx.v_op(cathode);
      const JunctionEval j = eval_junction(v, params_.junction_is, vt);
      ac_admittance(ctx, anode, cathode, {j.g + 1e-12, 0.0});
    };
    if (params_.type == MosType::kNmos) {
      stamp_junction(b_, s_);
      stamp_junction(b_, d_);
    } else {
      stamp_junction(s_, b_);
      stamp_junction(d_, b_);
    }
  }
}

// ------------------------------------------------------------- SmoothSwitch

SmoothSwitch::SmoothSwitch(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn,
                           SwitchParams params)
    : Device(std::move(name)), a_(a), b_(b), cp_(cp), cn_(cn), params_(params) {
  if (params_.r_on <= 0.0 || params_.r_off <= params_.r_on) {
    throw std::invalid_argument("SmoothSwitch: need 0 < r_on < r_off");
  }
  if (params_.v_on == params_.v_off) {
    throw std::invalid_argument("SmoothSwitch: v_on must differ from v_off");
  }
  ln_g_on_ = std::log(1.0 / params_.r_on);
  ln_g_off_ = std::log(1.0 / params_.r_off);
}

double SmoothSwitch::conductance(double vc) const {
  const double raw = (vc - params_.v_off) / (params_.v_on - params_.v_off);
  const double s = std::clamp(raw, 0.0, 1.0);
  const double smooth = s * s * (3.0 - 2.0 * s);
  return std::exp(ln_g_off_ + smooth * (ln_g_on_ - ln_g_off_));
}

void SmoothSwitch::start_step(double /*time*/, double /*dt*/) { have_prev_ = false; }

void SmoothSwitch::stamp(StampContext& ctx) {
  double vc = ctx.v(cp_) - ctx.v(cn_);
  // Bound the per-iteration control-voltage change so Newton walks
  // through the transition region instead of leaping over it.
  if (have_prev_) {
    const double vc_raw = vc;
    const double max_step = std::max(0.5 * std::abs(params_.v_on - params_.v_off), 0.1);
    vc = vc_prev_ + std::clamp(vc - vc_prev_, -max_step, max_step);
    if (std::abs(vc - vc_raw) > 1e-9) ctx.limited = true;
  }
  vc_prev_ = vc;
  have_prev_ = true;

  const double vd = ctx.v(a_) - ctx.v(b_);
  const double g = conductance(vc);

  // dG/dvc from the smoothstep in log space.
  const double raw = (vc - params_.v_off) / (params_.v_on - params_.v_off);
  double dg_dvc = 0.0;
  if (raw > 0.0 && raw < 1.0) {
    const double ds_dvc = 1.0 / (params_.v_on - params_.v_off);
    const double dsmooth = 6.0 * raw * (1.0 - raw) * ds_dvc;
    dg_dvc = g * (ln_g_on_ - ln_g_off_) * dsmooth;
  }

  // I = G(vc) vd; linearize in (va, vb, vcp, vcn). The matrix terms
  // reproduce G vd + cross vc at the iterate, so the constant companion
  // current is what is left of I_k = G vd_k after subtracting them.
  const double cross = dg_dvc * vd;
  stamp_conductance(ctx, a_, b_, g);
  add_a(ctx, a_, cp_, cross);
  add_a(ctx, a_, cn_, -cross);
  add_a(ctx, b_, cp_, -cross);
  add_a(ctx, b_, cn_, cross);
  const double vc_actual = ctx.v(cp_) - ctx.v(cn_);
  stamp_current(ctx, a_, b_, -cross * vc_actual);
}

void SmoothSwitch::stamp_ac(AcStampContext& ctx) const {
  const double vc = ctx.v_op(cp_) - ctx.v_op(cn_);
  const double vd = ctx.v_op(a_) - ctx.v_op(b_);
  const double g = conductance(vc);
  const double raw = (vc - params_.v_off) / (params_.v_on - params_.v_off);
  double dg_dvc = 0.0;
  if (raw > 0.0 && raw < 1.0) {
    const double ds_dvc = 1.0 / (params_.v_on - params_.v_off);
    dg_dvc = g * (ln_g_on_ - ln_g_off_) * 6.0 * raw * (1.0 - raw) * ds_dvc;
  }
  const double cross = dg_dvc * vd;
  ac_admittance(ctx, a_, b_, {g, 0.0});
  ac_add(ctx, a_, cp_, {cross, 0.0});
  ac_add(ctx, a_, cn_, {-cross, 0.0});
  ac_add(ctx, b_, cp_, {-cross, 0.0});
  ac_add(ctx, b_, cn_, {cross, 0.0});
}

// -------------------------------------------------------------------- OpAmp

OpAmp::OpAmp(std::string name, NodeId out, NodeId inp, NodeId inn, OpAmpParams params)
    : Device(std::move(name)), out_(out), inp_(inp), inn_(inn), params_(params) {
  if (params_.v_out_max <= params_.v_out_min) {
    throw std::invalid_argument("OpAmp: v_out_max must exceed v_out_min");
  }
  if (params_.gain <= 0.0) throw std::invalid_argument("OpAmp: gain must be > 0");
}

void OpAmp::setup(Circuit& ckt) { branch_ = ckt.allocate_branch(name()); }

double OpAmp::transfer(double v_diff) const {
  const double mid = 0.5 * (params_.v_out_max + params_.v_out_min);
  const double half = 0.5 * (params_.v_out_max - params_.v_out_min);
  return mid + half * std::tanh(params_.gain * (v_diff - params_.input_offset) / half);
}

void OpAmp::start_step(double /*time*/, double /*dt*/) { have_prev_ = false; }

void OpAmp::stamp_ac(AcStampContext& ctx) const {
  const double vd = ctx.v_op(inp_) - ctx.v_op(inn_);
  const double half = 0.5 * (params_.v_out_max - params_.v_out_min);
  const double th = std::tanh(params_.gain * (vd - params_.input_offset) / half);
  const double fprime = params_.gain * (1.0 - th * th);
  ac_add(ctx, out_, branch_, {1.0, 0.0});
  ac_add(ctx, branch_, out_, {1.0, 0.0});
  ac_add(ctx, branch_, inp_, {-fprime, 0.0});
  ac_add(ctx, branch_, inn_, {fprime, 0.0});
}

void OpAmp::stamp(StampContext& ctx) {
  double vd = ctx.v(inp_) - ctx.v(inn_);
  if (have_prev_) {
    const double vd_raw = vd;
    // Walk the differential input in bounded steps so the evaluation
    // point cannot leap across the (narrow) linear region each iteration.
    vd = vd_prev_ + std::clamp(vd - vd_prev_, -0.1, 0.1);
    if (std::abs(vd - vd_raw) > 1e-9) ctx.limited = true;
  }
  vd_prev_ = vd;
  have_prev_ = true;
  const double half = 0.5 * (params_.v_out_max - params_.v_out_min);
  const double th = std::tanh(params_.gain * (vd - params_.input_offset) / half);
  const double f = transfer(vd);
  const double fprime = params_.gain * (1.0 - th * th);

  // Branch equation: v(out) - f'(vd_k) (v(inp) - v(inn)) = f(vd_k) - f'(vd_k) vd_k.
  add_a(ctx, out_, branch_, 1.0);
  add_a(ctx, branch_, out_, 1.0);
  add_a(ctx, branch_, inp_, -fprime);
  add_a(ctx, branch_, inn_, fprime);
  add_rhs(ctx, branch_, f - fprime * vd);
}


// ------------------------------------------------------------- reflection

DeviceInfo Diode::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kDiode;
  d.terminals = {{"a", anode_, TerminalDc::kConducting},
                 {"k", cathode_, TerminalDc::kConducting}};
  d.voltage_rating = params_.breakdown_voltage;  // 0 = unrated
  return d;
}

void Diode::check_params(std::vector<std::string>& errors,
                         std::vector<std::string>& warnings) const {
  if (params_.saturation_current <= 0.0) {
    errors.push_back("saturation current must be > 0");
  } else if (params_.saturation_current > 1e-3) {
    warnings.push_back("saturation current " + std::to_string(params_.saturation_current) +
                       " A is implausibly large for a junction diode");
  }
  if (params_.emission_coeff < 0.5 || params_.emission_coeff > 10.0) {
    warnings.push_back("emission coefficient " + std::to_string(params_.emission_coeff) +
                       " is outside the usual [0.5, 10] range");
  }
  if (params_.breakdown_voltage < 0.0) {
    errors.push_back("breakdown voltage must be >= 0 (magnitude)");
  }
}

DeviceInfo Mosfet::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kMosfet;
  d.terminals = {{"d", d_, TerminalDc::kConducting},
                 {"g", g_, TerminalDc::kSensing},
                 {"s", s_, TerminalDc::kConducting},
                 {"b", b_, params_.bulk_diodes ? TerminalDc::kConducting
                                               : TerminalDc::kSensing}};
  return d;
}

void Mosfet::check_params(std::vector<std::string>& errors,
                          std::vector<std::string>& warnings) const {
  if (params_.w <= 0.0 || params_.l <= 0.0) errors.push_back("W and L must be > 0");
  if (params_.kp <= 0.0) errors.push_back("transconductance parameter KP must be > 0");
  if (params_.lambda < 0.0) errors.push_back("channel-length modulation must be >= 0");
  if (params_.w > 0.0 && params_.l > 0.0) {
    const double ratio = params_.w / params_.l;
    if (ratio < 1e-2 || ratio > 1e5) {
      warnings.push_back("W/L ratio " + std::to_string(ratio) +
                         " is outside the plausible [0.01, 1e5] range");
    }
  }
  if (std::abs(params_.vt0) > 5.0) {
    warnings.push_back("threshold magnitude " + std::to_string(params_.vt0) +
                       " V is implausibly large");
  }
}

DeviceInfo SmoothSwitch::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kSwitch;
  d.terminals = {{"+", a_, TerminalDc::kConducting},
                 {"-", b_, TerminalDc::kConducting},
                 {"cp", cp_, TerminalDc::kSensing},
                 {"cn", cn_, TerminalDc::kSensing}};
  d.dc_groups = {{0, 1}};
  return d;
}

void SmoothSwitch::check_params(std::vector<std::string>& errors,
                                std::vector<std::string>& warnings) const {
  if (!(params_.r_on > 0.0) || !(params_.r_off > params_.r_on)) {
    errors.push_back("need 0 < r_on < r_off");
  } else if (params_.r_off / params_.r_on > 1e12) {
    warnings.push_back("r_off/r_on ratio exceeds 1e12 -- expect an ill-conditioned"
                       " MNA matrix near the switching threshold");
  }
  if (params_.v_on == params_.v_off) errors.push_back("v_on must differ from v_off");
}

DeviceInfo OpAmp::info() const {
  DeviceInfo d;
  d.kind = DeviceKind::kOpAmp;
  d.terminals = {{"out", out_, TerminalDc::kConducting},
                 {"inp", inp_, TerminalDc::kSensing},
                 {"inn", inn_, TerminalDc::kSensing}};
  d.rigid_to_ground = {0};  // output voltage is pinned by the macromodel
  d.has_output_range = true;
  d.output_min = params_.v_out_min;
  d.output_max = params_.v_out_max;
  return d;
}

void OpAmp::check_params(std::vector<std::string>& errors,
                         std::vector<std::string>& warnings) const {
  if (params_.v_out_max <= params_.v_out_min) {
    errors.push_back("v_out_max must exceed v_out_min");
  }
  if (params_.gain <= 0.0) {
    errors.push_back("gain must be > 0");
  } else if (params_.gain < 1.0) {
    warnings.push_back("gain below 1 -- the macromodel degenerates to an attenuator");
  }
}

}  // namespace ironic::spice

