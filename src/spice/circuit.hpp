// Circuit: node registry plus device container — the netlist.
//
// Usage:
//   Circuit ckt;
//   auto in = ckt.node("in");
//   auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 5e6));
//   ckt.add<Resistor>("R1", in, ckt.node("out"), 50.0);
//   ...
//   auto result = TransientSolver(spec).run(ckt);
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/spice/device.hpp"

namespace ironic::spice {

class Circuit {
 public:
  Circuit() = default;

  // Get or create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  // Create a fresh unique internal node (for device macro expansion).
  NodeId internal_node(const std::string& hint);
  // Look up an existing node; throws if unknown.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  std::size_t num_nodes() const { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  // Construct and register a device. Returns a reference that stays valid
  // for the lifetime of the circuit.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto device = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *device;
    register_device(std::move(device));
    return ref;
  }

  std::vector<std::unique_ptr<Device>>& devices() { return devices_; }
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  // Find a device by name; returns nullptr if absent.
  Device* find_device(const std::string& name);

  // --- engine interface ---------------------------------------------------

  // Assign branch indices; called by the engine before every analysis.
  void finalize();
  bool finalized() const { return finalized_; }

  // Allocate a branch unknown during Device::setup. `label` names the
  // current trace ("i(<label>)").
  int allocate_branch(const std::string& label);

  std::size_t num_branches() const { return branch_labels_.size(); }
  std::size_t num_unknowns() const { return num_nodes() + num_branches(); }
  const std::vector<std::string>& branch_labels() const { return branch_labels_; }

  // Signal names in unknown order: v(<node>) then i(<branch>).
  std::vector<std::string> signal_names() const;

  // Circuit-owned linear solvers, so the cached stamp slots, sparsity
  // pattern, and symbolic factorization survive across Newton iterations,
  // time steps, and whole runs (a checkpoint-resumed transient re-uses
  // the pattern its capturing run built). `kind` is resolved against the
  // current number of unknowns; the solver is re-created when the size or
  // the resolved backend changed, and topology growth at a constant size
  // is absorbed by the solver's own pattern merging. Call after
  // finalize().
  linalg::LinearSolver& acquire_solver(linalg::SolverKind kind);
  linalg::ComplexLinearSolver& acquire_complex_solver(linalg::SolverKind kind);

 private:
  void register_device(std::unique_ptr<Device> device);

  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_index_;
  std::vector<std::string> branch_labels_;
  bool finalized_ = false;
  int internal_counter_ = 0;
  std::unique_ptr<linalg::LinearSolver> solver_;
  std::unique_ptr<linalg::ComplexLinearSolver> complex_solver_;
};

}  // namespace ironic::spice
