// Circuit: node registry plus device container — the netlist.
//
// Usage:
//   Circuit ckt;
//   auto in = ckt.node("in");
//   auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 5e6));
//   ckt.add<Resistor>("R1", in, ckt.node("out"), 50.0);
//   ...
//   auto result = TransientSolver(spec).run(ckt);
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/spice/device.hpp"

namespace ironic::spice {

class Circuit {
 public:
  Circuit() = default;

  // Get or create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  // Create a fresh unique internal node (for device macro expansion).
  NodeId internal_node(const std::string& hint);
  // Look up an existing node; throws if unknown.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;

  std::size_t num_nodes() const { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  // Construct and register a device. Returns a reference that stays valid
  // for the lifetime of the circuit.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto device = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *device;
    register_device(std::move(device));
    return ref;
  }

  std::vector<std::unique_ptr<Device>>& devices() { return devices_; }
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  // Find a device by name; returns nullptr if absent.
  Device* find_device(const std::string& name);

  // --- engine interface ---------------------------------------------------

  // Assign branch indices; called by the engine before every analysis.
  void finalize();
  bool finalized() const { return finalized_; }

  // Allocate a branch unknown during Device::setup. `label` names the
  // current trace ("i(<label>)").
  int allocate_branch(const std::string& label);

  std::size_t num_branches() const { return branch_labels_.size(); }
  std::size_t num_unknowns() const { return num_nodes() + num_branches(); }
  const std::vector<std::string>& branch_labels() const { return branch_labels_; }

  // Signal names in unknown order: v(<node>) then i(<branch>).
  std::vector<std::string> signal_names() const;

  // Circuit-owned linear solvers, so the cached stamp slots, sparsity
  // pattern, and symbolic factorization survive across Newton iterations,
  // time steps, and whole runs (a checkpoint-resumed transient re-uses
  // the pattern its capturing run built). `kind` is resolved against the
  // current number of unknowns; the solver is re-created when the size or
  // the resolved backend changed, and topology growth at a constant size
  // is absorbed by the solver's own pattern merging. Call after
  // finalize().
  linalg::LinearSolver& acquire_solver(linalg::SolverKind kind);
  linalg::ComplexLinearSolver& acquire_complex_solver(linalg::SolverKind kind);

  // --- static-analysis hints ---------------------------------------------
  // Monotonic topology revision: bumped whenever a node or device is
  // added. Analysis passes key their caches on it.
  std::uint64_t revision() const { return revision_; }

  // Backend recommendation from the static sparsity/cost-model pass.
  // Consulted by acquire_solver only when the caller asked for kAuto;
  // an explicit kDense/kSparse request always wins. kAuto = no hint.
  void set_solver_hint(linalg::SolverKind hint) { solver_hint_ = hint; }
  linalg::SolverKind solver_hint() const { return solver_hint_; }

  // Recommended max transient step from the timescale pass; <= 0 = none.
  // Honored by run_transient when the caller leaves dt_max at auto (0).
  void set_dt_hint(double dt) { dt_hint_ = dt; }
  double dt_hint() const { return dt_hint_; }

 private:
  void register_device(std::unique_ptr<Device> device);

  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_index_;
  std::vector<std::string> branch_labels_;
  bool finalized_ = false;
  int internal_counter_ = 0;
  std::uint64_t revision_ = 0;
  linalg::SolverKind solver_hint_ = linalg::SolverKind::kAuto;
  double dt_hint_ = 0.0;
  std::unique_ptr<linalg::LinearSolver> solver_;
  std::unique_ptr<linalg::ComplexLinearSolver> complex_solver_;
};

}  // namespace ironic::spice
