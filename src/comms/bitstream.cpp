#include "src/comms/bitstream.hpp"

#include <stdexcept>

namespace ironic::comms {

Bits bits_from_string(const std::string& s) {
  Bits bits;
  bits.reserve(s.size());
  for (char c : s) {
    if (c == '0') {
      bits.push_back(false);
    } else if (c == '1') {
      bits.push_back(true);
    } else {
      throw std::invalid_argument("bits_from_string: expected only '0'/'1'");
    }
  }
  return bits;
}

std::string bits_to_string(const Bits& bits) {
  std::string s;
  s.reserve(bits.size());
  for (bool b : bits) s.push_back(b ? '1' : '0');
  return s;
}

Bits bits_from_bytes(const std::vector<std::uint8_t>& bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int i = 7; i >= 0; --i) bits.push_back((byte >> i) & 1u);
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> bytes_from_bits(const Bits& bits) {
  if (bits.size() % 8 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t byte = 0;
    for (int j = 0; j < 8; ++j) byte = static_cast<std::uint8_t>((byte << 1) | bits[i + j]);
    bytes.push_back(byte);
  }
  return bytes;
}

Bits random_bits(std::size_t n, util::Rng& rng) { return rng.bits(n); }

std::size_t hamming_distance(const Bits& a, const Bits& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: length mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]);
  return d;
}

double bit_error_rate(const Bits& sent, const Bits& received) {
  if (sent.empty() && received.empty()) return 0.0;
  return static_cast<double>(hamming_distance(sent, received)) /
         static_cast<double>(sent.size());
}

std::uint8_t crc8(const std::vector<std::uint8_t>& data) {
  std::uint8_t crc = 0x00;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07u)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

namespace {
constexpr std::uint8_t kPreamble = 0xAA;
constexpr std::uint8_t kSync = 0x7E;
}  // namespace

Bits encode_frame(const Frame& frame) {
  if (frame.payload.size() > 255) {
    throw std::invalid_argument("encode_frame: payload exceeds 255 bytes");
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(frame.payload.size() + 4);
  bytes.push_back(kPreamble);
  bytes.push_back(kSync);
  bytes.push_back(static_cast<std::uint8_t>(frame.payload.size()));
  bytes.insert(bytes.end(), frame.payload.begin(), frame.payload.end());
  std::vector<std::uint8_t> crc_region(bytes.begin() + 2, bytes.end());
  bytes.push_back(crc8(crc_region));
  return bits_from_bytes(bytes);
}

std::optional<Frame> decode_frame(const Bits& bits) {
  const auto bytes_opt = bytes_from_bits(bits);
  if (!bytes_opt.has_value()) return std::nullopt;
  const auto& bytes = *bytes_opt;
  if (bytes.size() < 4) return std::nullopt;
  if (bytes[0] != kPreamble || bytes[1] != kSync) return std::nullopt;
  const std::size_t len = bytes[2];
  if (bytes.size() != len + 4) return std::nullopt;
  std::vector<std::uint8_t> crc_region(bytes.begin() + 2, bytes.end() - 1);
  if (crc8(crc_region) != bytes.back()) return std::nullopt;
  Frame frame;
  frame.payload.assign(bytes.begin() + 3, bytes.end() - 1);
  return frame;
}

}  // namespace ironic::comms
