// Line coding and burst synchronization.
//
// The paper's links send raw NRZ bits with the receiver clock aligned by
// construction. A deployed implant needs two more pieces this module
// provides: Manchester coding (DC-free, self-clocking — important when
// the ASK envelope also carries power) and preamble correlation so the
// receiver can find the burst start on its own.
#pragma once

#include <cstddef>
#include <span>

#include "src/comms/bitstream.hpp"

namespace ironic::comms {

// Manchester (IEEE 802.3 convention): '1' -> 10, '0' -> 01.
Bits manchester_encode(const Bits& bits);
// Decode; returns nullopt if the stream has odd length or an invalid
// (00/11) symbol.
std::optional<Bits> manchester_decode(const Bits& chips);

// A Manchester stream is DC-free: equal ones and zeros.
bool is_dc_free(const Bits& chips);

// Preamble used to locate bursts: alternating 10101010 + sync 0x7E.
Bits standard_preamble();

// Locate the first occurrence of `pattern` in a sliced envelope: slides
// a correlator over hard-decided samples (one per bit, given bit_rate)
// and returns the time of the first full-score match.
//
// `time`/`envelope` are the receiver's envelope-detector output;
// `threshold` the slicing level. Returns false if no match.
bool find_burst_start(std::span<const double> time, std::span<const double> envelope,
                      double bit_rate, double threshold, const Bits& pattern,
                      double& t_first_bit);

}  // namespace ironic::comms
