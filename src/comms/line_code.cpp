#include "src/comms/line_code.hpp"

#include <algorithm>

namespace ironic::comms {

Bits manchester_encode(const Bits& bits) {
  Bits chips;
  chips.reserve(bits.size() * 2);
  for (bool b : bits) {
    chips.push_back(b);
    chips.push_back(!b);
  }
  return chips;
}

std::optional<Bits> manchester_decode(const Bits& chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  Bits bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == chips[i + 1]) return std::nullopt;  // 00/11 invalid
    bits.push_back(chips[i]);
  }
  return bits;
}

bool is_dc_free(const Bits& chips) {
  std::size_t ones = 0;
  for (bool c : chips) ones += c;
  return 2 * ones == chips.size();
}

Bits standard_preamble() {
  return bits_from_bytes({0xAA, 0x7E});
}

bool find_burst_start(std::span<const double> time, std::span<const double> envelope,
                      double bit_rate, double threshold, const Bits& pattern,
                      double& t_first_bit) {
  if (time.size() != envelope.size() || time.empty() || pattern.empty() ||
      bit_rate <= 0.0) {
    return false;
  }
  const double tb = 1.0 / bit_rate;
  const auto sample = [&](double t) -> int {
    if (t < time.front() || t > time.back()) return -1;  // outside the trace
    const auto it = std::lower_bound(time.begin(), time.end(), t);
    const auto idx = static_cast<std::size_t>(it - time.begin());
    return envelope[std::min(idx, envelope.size() - 1)] > threshold ? 1 : 0;
  };

  // Slide in quarter-bit steps; accept the first offset where every
  // pattern bit matches at *two* phases inside its cell. The dual-phase
  // check rejects offsets where a sample lands on an envelope edge and
  // happens to slice the right way.
  for (double t0 = time.front(); t0 + pattern.size() * tb <= time.back();
       t0 += tb / 4.0) {
    bool all = true;
    for (std::size_t k = 0; k < pattern.size() && all; ++k) {
      const int expected = pattern[k] ? 1 : 0;
      const int early = sample(t0 + (static_cast<double>(k) + 0.35) * tb);
      const int late = sample(t0 + (static_cast<double>(k) + 0.80) * tb);
      all = (early == expected) && (late == expected);
    }
    if (all) {
      t_first_bit = t0;
      return true;
    }
  }
  return false;
}

}  // namespace ironic::comms
