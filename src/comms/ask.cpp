#include "src/comms/ask.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace ironic::comms {

double modulation_depth_from_divider(double r7, double r8) {
  if (r7 <= 0.0 || r8 <= 0.0) {
    throw std::invalid_argument("modulation_depth_from_divider: resistances must be > 0");
  }
  return 1.0 - r8 / (r7 + r8);
}

util::PiecewiseLinear ask_envelope(const Bits& bits, const AskSpec& spec,
                                   double t_start, double t_total) {
  if (spec.bit_rate <= 0.0 || spec.edge_time < 0.0) {
    throw std::invalid_argument("ask_envelope: invalid spec");
  }
  const double tb = spec.bit_period();
  if (spec.edge_time >= tb / 2.0) {
    throw std::invalid_argument("ask_envelope: edge time must be < half a bit");
  }
  const double hi = spec.amplitude_high;
  const double lo = spec.amplitude_low();

  std::vector<double> ts;
  std::vector<double> vs;
  const auto push = [&](double t, double v) {
    if (!ts.empty() && t <= ts.back()) t = ts.back() + 1e-12;
    ts.push_back(t);
    vs.push_back(v);
  };

  push(0.0, hi);
  double level = hi;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double target = bits[i] ? hi : lo;
    const double t_bit = t_start + static_cast<double>(i) * tb;
    if (target != level) {
      push(t_bit, level);
      push(t_bit + spec.edge_time, target);
      level = target;
    }
  }
  // Return to the unmodulated carrier after the burst.
  const double t_end = t_start + static_cast<double>(bits.size()) * tb;
  if (level != hi) {
    push(t_end, level);
    push(t_end + spec.edge_time, hi);
  }
  push(std::max(t_total, (ts.empty() ? 0.0 : ts.back()) + 1e-12), hi);
  return util::PiecewiseLinear(std::move(ts), std::move(vs));
}

spice::Waveform ask_waveform(const Bits& bits, const AskSpec& spec, double t_start,
                             double t_total) {
  return spice::Waveform::modulated_sine(spec.carrier_frequency,
                                         ask_envelope(bits, spec, t_start, t_total));
}

std::vector<double> envelope_detect(std::span<const double> time,
                                    std::span<const double> carrier, double tau) {
  if (time.size() != carrier.size()) {
    throw std::invalid_argument("envelope_detect: size mismatch");
  }
  if (tau <= 0.0) throw std::invalid_argument("envelope_detect: tau must be > 0");
  std::vector<double> env(time.size(), 0.0);
  double state = 0.0;
  for (std::size_t i = 0; i < time.size(); ++i) {
    const double x = std::abs(carrier[i]);
    if (i > 0) {
      const double dt = time[i] - time[i - 1];
      if (x > state) {
        state = x;  // ideal-diode fast attack
      } else {
        state += (x - state) * (1.0 - std::exp(-dt / tau));
      }
    } else {
      state = x;
    }
    env[i] = state;
  }
  return env;
}

Bits slice_bits(std::span<const double> time, std::span<const double> envelope,
                double bit_rate, double t_first_bit, std::size_t n_bits) {
  if (time.size() != envelope.size() || time.empty() || n_bits == 0) {
    throw std::invalid_argument("slice_bits: bad inputs");
  }
  const double tb = 1.0 / bit_rate;
  if (t_first_bit + static_cast<double>(n_bits) * tb < time.front() ||
      t_first_bit > time.back()) {
    throw std::invalid_argument("slice_bits: window outside trace");
  }

  const auto sample = [&](double t) {
    const auto it = std::lower_bound(time.begin(), time.end(), t);
    std::size_t idx = static_cast<std::size_t>(it - time.begin());
    if (idx >= time.size()) idx = time.size() - 1;
    return envelope[idx];
  };

  // Sample late in each bit cell so the envelope has settled.
  std::vector<double> values(n_bits);
  for (std::size_t i = 0; i < n_bits; ++i) {
    values[i] = sample(t_first_bit + (static_cast<double>(i) + 0.75) * tb);
  }

  // Robust adaptive threshold: midpoint of the lower- and upper-half
  // means of the bit-center samples (a one-step two-means split); this
  // ignores noise spikes that a raw min/max midpoint would track.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t half = sorted.size() / 2;
  double lo_mean = 0.0, hi_mean = 0.0;
  if (half == 0) {
    lo_mean = hi_mean = sorted.front();
  } else {
    for (std::size_t i = 0; i < half; ++i) lo_mean += sorted[i];
    for (std::size_t i = half; i < sorted.size(); ++i) hi_mean += sorted[i];
    lo_mean /= static_cast<double>(half);
    hi_mean /= static_cast<double>(sorted.size() - half);
  }
  const double threshold = 0.5 * (lo_mean + hi_mean);

  Bits out;
  out.reserve(n_bits);
  for (double v : values) out.push_back(v > threshold);

  if constexpr (obs::kEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("comms.ask.bits_sliced").add(n_bits);
    auto& margin = registry.histogram("comms.ask.decision_margin_v");
    for (double v : values) margin.observe(std::abs(v - threshold));
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      for (std::size_t i = 0; i < n_bits; ++i) {
        recorder.sim_instant(
            "ask.bit", "comms",
            t_first_bit + (static_cast<double>(i) + 0.75) * tb,
            {{"bit", out[i] ? "1" : "0"},
             {"envelope_v", std::to_string(values[i])},
             {"threshold_v", std::to_string(threshold)}});
      }
    }
  }
  return out;
}

Bits demodulate_ask(std::span<const double> time, std::span<const double> carrier,
                    const AskSpec& spec, double t_first_bit, std::size_t n_bits) {
  // Envelope time constant: a few carrier periods, well below a bit.
  const double tau = 4.0 / spec.carrier_frequency;
  const auto env = envelope_detect(time, carrier, tau);
  return slice_bits(time, env, spec.bit_rate, t_first_bit, n_bits);
}

double ask_theoretical_ber_bound(const AskSpec& spec, double noise_rms) {
  if (noise_rms < 0.0) {
    throw std::invalid_argument("ask_theoretical_ber_bound: noise must be >= 0");
  }
  if (noise_rms == 0.0) return 0.0;
  const double separation = spec.amplitude_high - spec.amplitude_low();
  const double argument = separation / (2.0 * noise_rms);
  // Q(x) = erfc(x / sqrt 2) / 2.
  return 0.5 * std::erfc(argument / std::sqrt(2.0));
}

}  // namespace ironic::comms
