#include "src/comms/protocol.hpp"

namespace ironic::comms {

Bits encode_request(const Request& request) {
  Frame frame;
  frame.payload.reserve(request.payload.size() + 2);
  frame.payload.push_back(request.sequence);
  frame.payload.push_back(static_cast<std::uint8_t>(request.command));
  frame.payload.insert(frame.payload.end(), request.payload.begin(),
                       request.payload.end());
  return encode_frame(frame);
}

std::optional<Request> decode_request(const Bits& bits) {
  const auto frame = decode_frame(bits);
  if (!frame.has_value() || frame->payload.size() < 2) return std::nullopt;
  Request request;
  request.sequence = frame->payload[0];
  request.command = static_cast<Command>(frame->payload[1]);
  request.payload.assign(frame->payload.begin() + 2, frame->payload.end());
  return request;
}

Bits encode_response(const Response& response) {
  Frame frame;
  frame.payload.reserve(response.payload.size() + 2);
  frame.payload.push_back(response.sequence);
  frame.payload.push_back(response.ok ? 0x00 : 0xFF);
  frame.payload.insert(frame.payload.end(), response.payload.begin(),
                       response.payload.end());
  return encode_frame(frame);
}

std::optional<Response> decode_response(const Bits& bits) {
  const auto frame = decode_frame(bits);
  if (!frame.has_value() || frame->payload.size() < 2) return std::nullopt;
  Response response;
  response.sequence = frame->payload[0];
  response.ok = frame->payload[1] == 0x00;
  response.payload.assign(frame->payload.begin() + 2, frame->payload.end());
  return response;
}

std::optional<Response> Transactor::execute(
    const Request& request, const Channel& downlink, const Channel& uplink,
    const std::function<Response(const Request&)>& implant_handler,
    TransactorStats* stats) {
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (stats) ++stats->attempts;
    // Downlink: command to the implant.
    const auto rx_request = decode_request(downlink(encode_request(request)));
    if (!rx_request.has_value()) {
      if (stats) ++stats->crc_failures;
      continue;  // the implant never acks a broken frame; patch retries
    }
    // The implant processes the command and answers with the sequence.
    Response response = implant_handler(*rx_request);
    response.sequence = rx_request->sequence;
    // Uplink: data back to the patch.
    const auto rx_response = decode_response(uplink(encode_response(response)));
    if (!rx_response.has_value()) {
      if (stats) ++stats->crc_failures;
      continue;
    }
    if (rx_response->sequence != request.sequence) {
      if (stats) ++stats->sequence_mismatches;
      continue;  // stale response from an earlier attempt
    }
    return rx_response;
  }
  return std::nullopt;
}

}  // namespace ironic::comms
