#include "src/comms/protocol.hpp"

#include "src/obs/metrics.hpp"

namespace ironic::comms {
namespace {

// Registry handles for the transactor hot path, resolved once.
struct TransactorMetrics {
  obs::Counter& attempts;
  obs::Counter& crc_failures;
  obs::Counter& sequence_mismatches;
  obs::Counter& stale_responses;
  obs::Counter& retries_exhausted;
  obs::Counter& duplicate_deliveries;
  obs::Counter& bits_on_air;
  obs::Histogram& attempt_ms;

  static TransactorMetrics& get() {
    static TransactorMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return TransactorMetrics{
          r.counter("comms.transactor.attempts"),
          r.counter("comms.transactor.crc_failures"),
          r.counter("comms.transactor.sequence_mismatches"),
          r.counter("comms.transactor.stale_responses"),
          r.counter("comms.transactor.retries_exhausted"),
          r.counter("comms.transactor.duplicate_deliveries"),
          r.counter("comms.transactor.bits_on_air"),
          r.histogram("comms.transactor.attempt_ms",
                      {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500}),
      };
    }();
    return m;
  }
};

}  // namespace

Bits encode_request(const Request& request) {
  Frame frame;
  frame.payload.reserve(request.payload.size() + 2);
  frame.payload.push_back(request.sequence);
  frame.payload.push_back(static_cast<std::uint8_t>(request.command));
  frame.payload.insert(frame.payload.end(), request.payload.begin(),
                       request.payload.end());
  return encode_frame(frame);
}

std::optional<Request> decode_request(const Bits& bits) {
  const auto frame = decode_frame(bits);
  if (!frame.has_value() || frame->payload.size() < 2) return std::nullopt;
  Request request;
  request.sequence = frame->payload[0];
  request.command = static_cast<Command>(frame->payload[1]);
  request.payload.assign(frame->payload.begin() + 2, frame->payload.end());
  return request;
}

Bits encode_response(const Response& response) {
  Frame frame;
  frame.payload.reserve(response.payload.size() + 2);
  frame.payload.push_back(response.sequence);
  frame.payload.push_back(response.ok ? 0x00 : 0xFF);
  frame.payload.insert(frame.payload.end(), response.payload.begin(),
                       response.payload.end());
  return encode_frame(frame);
}

std::optional<Response> decode_response(const Bits& bits) {
  const auto frame = decode_frame(bits);
  if (!frame.has_value() || frame->payload.size() < 2) return std::nullopt;
  Response response;
  response.sequence = frame->payload[0];
  response.ok = frame->payload[1] == 0x00;
  response.payload.assign(frame->payload.begin() + 2, frame->payload.end());
  return response;
}

std::optional<Response> Transactor::execute(
    const Request& request, const Channel& downlink, const Channel& uplink,
    const std::function<Response(const Request&)>& implant_handler,
    TransactorStats* stats) {
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    if (stats) ++stats->attempts;
    if constexpr (obs::kEnabled) TransactorMetrics::get().attempts.add();
    std::uint64_t attempt_bits = 0;
    // Per-attempt airtime at the current rate, booked on every exit from
    // the attempt (success, CRC failure, mismatch alike).
    const auto book_latency = [&] {
      if constexpr (obs::kEnabled) {
        auto& m = TransactorMetrics::get();
        m.bits_on_air.add(attempt_bits);
        if (bit_rate_ > 0.0) {
          m.attempt_ms.observe(1e3 * static_cast<double>(attempt_bits) / bit_rate_);
        }
      }
      if (stats) {
        stats->bits_on_air += attempt_bits;
        stats->attempt_seconds.push_back(
            bit_rate_ > 0.0 ? static_cast<double>(attempt_bits) / bit_rate_ : 0.0);
      }
    };
    // Downlink: command to the implant.
    const Bits tx_request = encode_request(request);
    attempt_bits += tx_request.size();
    const auto rx_request = decode_request(downlink(tx_request));
    if (!rx_request.has_value()) {
      book_latency();
      if (stats) ++stats->crc_failures;
      if constexpr (obs::kEnabled) TransactorMetrics::get().crc_failures.add();
      continue;  // the implant never acks a broken frame; patch retries
    }
    // The implant processes the command and answers with the sequence.
    Response response = implant_handler(*rx_request);
    response.sequence = rx_request->sequence;
    // Uplink: data back to the patch.
    const Bits tx_response = encode_response(response);
    attempt_bits += tx_response.size();
    const auto rx_response = decode_response(uplink(tx_response));
    book_latency();
    if (!rx_response.has_value()) {
      if (stats) ++stats->crc_failures;
      if constexpr (obs::kEnabled) TransactorMetrics::get().crc_failures.add();
      continue;
    }
    if (rx_response->sequence != request.sequence) {
      // Wrap-aware staleness: a response older than the outstanding
      // request is a late frame from a previous exchange; anything else
      // is corruption that survived the CRC.
      if (stats) {
        ++stats->sequence_mismatches;
        if (sequence_delta(rx_response->sequence, request.sequence) < 0) {
          ++stats->stale_responses;
        }
      }
      if constexpr (obs::kEnabled) {
        auto& m = TransactorMetrics::get();
        m.sequence_mismatches.add();
        if (sequence_delta(rx_response->sequence, request.sequence) < 0) {
          m.stale_responses.add();
        }
      }
      continue;  // stale response from an earlier attempt
    }
    return rx_response;
  }
  if (stats) ++stats->retries_exhausted;
  if constexpr (obs::kEnabled) TransactorMetrics::get().retries_exhausted.add();
  return std::nullopt;
}

ImplantDedup::ImplantDedup(std::size_t window)
    : capacity_(window == 0 ? 1 : window) {}

Response ImplantDedup::handle(
    const Request& request,
    const std::function<Response(const Request&)>& handler,
    TransactorStats* stats) {
  // A request that is not strictly newer than the last handled one is a
  // re-delivery (retry after uplink-only loss): replay the cached
  // response so side-effecting commands run exactly once per sequence.
  // sequence_newer makes 0 newer than 255, so the wrap does not strand
  // the implant replaying stale data for a fresh command.
  if (have_last_ && !sequence_newer(request.sequence, last_sequence_)) {
    if (stats) ++stats->duplicate_deliveries;
    if constexpr (obs::kEnabled) TransactorMetrics::get().duplicate_deliveries.add();
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
      if (it->sequence == request.sequence) return it->response;
    }
    // Older than the whole window: replay the newest entry — the patch
    // already abandoned that exchange, and the mismatched sequence makes
    // the transactor discard the frame anyway.
    return window_.back().response;
  }
  Entry entry;
  entry.sequence = request.sequence;
  entry.response = handler(request);
  window_.push_back(std::move(entry));
  if (window_.size() > capacity_) window_.pop_front();
  last_sequence_ = request.sequence;
  have_last_ = true;
  return window_.back().response;
}

}  // namespace ironic::comms
