#include "src/comms/pwm.hpp"

namespace ironic::comms {

Bits PwmCodec::encode(const Bits& data) const {
  Bits chips;
  chips.reserve(data.size() * static_cast<std::size_t>(chips_per_bit));
  for (const bool bit : data) {
    const int high = bit ? duty_one : duty_zero;
    for (int c = 0; c < chips_per_bit; ++c) chips.push_back(c < high);
  }
  return chips;
}

Bits PwmCodec::decode(const Bits& chips) const {
  const auto n = static_cast<std::size_t>(chips_per_bit);
  Bits data;
  data.reserve(chips.size() / n);
  for (std::size_t s = 0; s + n <= chips.size(); s += n) {
    int ones = 0;
    for (std::size_t c = 0; c < n; ++c) ones += chips[s + c] ? 1 : 0;
    // Threshold at the duty midpoint: ones > (duty_zero + duty_one) / 2.
    data.push_back(2 * ones > duty_zero + duty_one);
  }
  return data;
}

}  // namespace ironic::comms
