// Bitstreams, CRC-8 integrity, and the simple frame format used on both
// link directions (downlink commands, uplink sensor readings).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace ironic::comms {

using Bits = std::vector<bool>;

// Parse "10110..." into bits; throws on other characters.
Bits bits_from_string(const std::string& s);
std::string bits_to_string(const Bits& bits);
// MSB-first expansion of bytes into bits.
Bits bits_from_bytes(const std::vector<std::uint8_t>& bytes);
std::optional<std::vector<std::uint8_t>> bytes_from_bits(const Bits& bits);
// Deterministic random payload for tests/benches.
Bits random_bits(std::size_t n, util::Rng& rng);

// Bit errors between two streams of equal length; throws on mismatch.
std::size_t hamming_distance(const Bits& a, const Bits& b);
// Bit-error rate; 0 if both empty.
double bit_error_rate(const Bits& sent, const Bits& received);

// CRC-8 (polynomial 0x07, init 0x00), MSB first.
std::uint8_t crc8(const std::vector<std::uint8_t>& data);

// Frame format: [0xAA preamble] [0x7E sync] [len] [payload...] [crc8].
// Max payload 255 bytes.
struct Frame {
  std::vector<std::uint8_t> payload;
};

Bits encode_frame(const Frame& frame);
// Returns nullopt when the sync is absent or the CRC fails.
std::optional<Frame> decode_frame(const Bits& bits);

}  // namespace ironic::comms
