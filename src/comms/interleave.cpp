#include "src/comms/interleave.hpp"

#include <algorithm>
#include <stdexcept>

namespace ironic::comms {

Bits interleave(const Bits& bits, std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0 || bits.size() != rows * cols) {
    throw std::invalid_argument("interleave: need exactly rows*cols bits");
  }
  Bits out(bits.size());
  std::size_t k = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[k++] = bits[r * cols + c];
    }
  }
  return out;
}

Bits deinterleave(const Bits& bits, std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0 || bits.size() != rows * cols) {
    throw std::invalid_argument("deinterleave: need exactly rows*cols bits");
  }
  Bits out(bits.size());
  std::size_t k = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[r * cols + c] = bits[k++];
    }
  }
  return out;
}

Bits burst_channel(const Bits& bits, double burst_prob, std::size_t burst_length,
                   util::Rng& rng) {
  Bits out = bits;
  if (out.empty() || burst_length == 0) return out;
  if (rng.bernoulli(burst_prob)) {
    const std::size_t start = static_cast<std::size_t>(rng.below(out.size()));
    const std::size_t end = std::min(start + burst_length, out.size());
    for (std::size_t i = start; i < end; ++i) out[i] = !out[i];
  }
  return out;
}

std::size_t longest_error_burst(const Bits& sent, const Bits& received) {
  if (sent.size() != received.size()) {
    throw std::invalid_argument("longest_error_burst: length mismatch");
  }
  std::size_t best = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (sent[i] != received[i]) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best;
}

}  // namespace ironic::comms
