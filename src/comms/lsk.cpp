#include "src/comms/lsk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace ironic::comms {
namespace {

// Build a PWL gate that is `active_level` during the given bit condition.
spice::Waveform gate_from_bits(const Bits& bits, const LskSpec& spec, double t_start,
                               bool active_on_zero, double v_active, double v_idle) {
  const double tb = spec.bit_period();
  std::vector<double> ts;
  std::vector<double> vs;
  const auto push = [&](double t, double v) {
    if (!ts.empty() && t <= ts.back()) t = ts.back() + 1e-12;
    ts.push_back(t);
    vs.push_back(v);
  };
  push(0.0, v_idle);
  double level = v_idle;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool active = active_on_zero ? !bits[i] : bits[i];
    const double target = active ? v_active : v_idle;
    const double t_bit = t_start + static_cast<double>(i) * tb;
    if (target != level) {
      push(t_bit, level);
      push(t_bit + spec.edge_time, target);
      level = target;
    }
  }
  const double t_end = t_start + static_cast<double>(bits.size()) * tb;
  if (level != v_idle) {
    push(t_end, level);
    push(t_end + spec.edge_time, v_idle);
  }
  return spice::Waveform::pwl(std::move(ts), std::move(vs));
}

}  // namespace

spice::Waveform lsk_gate_waveform(const Bits& bits, const LskSpec& spec, double t_start) {
  if (spec.bit_rate <= 0.0) throw std::invalid_argument("lsk_gate_waveform: bad bit rate");
  // M1 shorts the input while transmitting a '0' (Sec. IV-A).
  return gate_from_bits(bits, spec, t_start, /*active_on_zero=*/true, spec.v_on,
                        spec.v_off);
}

spice::Waveform lsk_m2_gate_waveform(const Bits& bits, const LskSpec& spec,
                                     double t_start) {
  if (spec.bit_rate <= 0.0) {
    throw std::invalid_argument("lsk_m2_gate_waveform: bad bit rate");
  }
  // M2 idles closed (clamps active) and opens while M1 shorts.
  return gate_from_bits(bits, spec, t_start, /*active_on_zero=*/true, spec.v_off,
                        spec.v_on);
}

Bits detect_lsk(std::span<const double> time, std::span<const double> supply_current,
                const LskSpec& spec, double t_first_bit, std::size_t n_bits,
                bool invert) {
  if (time.size() != supply_current.size() || time.empty() || n_bits == 0) {
    throw std::invalid_argument("detect_lsk: bad inputs");
  }
  const double tb = spec.bit_period();

  // Per-bit averages (guard band of 20 % on each side of the cell).
  std::vector<double> means(n_bits, 0.0);
  std::vector<int> counts(n_bits, 0);
  for (std::size_t i = 0; i < time.size(); ++i) {
    const double rel = (time[i] - t_first_bit) / tb;
    if (rel < 0.0) continue;
    const auto bit = static_cast<std::size_t>(rel);
    if (bit >= n_bits) break;
    const double frac = rel - static_cast<double>(bit);
    if (frac < 0.2 || frac > 0.8) continue;
    means[bit] += supply_current[i];
    ++counts[bit];
  }
  for (std::size_t b = 0; b < n_bits; ++b) {
    if (counts[b] == 0) throw std::invalid_argument("detect_lsk: empty bit cell");
    means[b] /= counts[b];
  }

  const double lo = *std::min_element(means.begin(), means.end());
  const double hi = *std::max_element(means.begin(), means.end());
  const double threshold = 0.5 * (lo + hi);

  Bits out;
  out.reserve(n_bits);
  for (double m : means) {
    const bool above = m > threshold;
    out.push_back(invert ? !above : above);
  }

  if constexpr (obs::kEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("comms.lsk.bits_detected").add(n_bits);
    auto& margin = registry.histogram("comms.lsk.decision_margin_a");
    for (double m : means) margin.observe(std::abs(m - threshold));
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      for (std::size_t i = 0; i < n_bits; ++i) {
        recorder.sim_instant(
            "lsk.bit", "comms",
            t_first_bit + (static_cast<double>(i) + 0.5) * tb,
            {{"bit", out[i] ? "1" : "0"},
             {"mean_current_a", std::to_string(means[i])},
             {"threshold_a", std::to_string(threshold)}});
      }
    }
  }
  return out;
}

double achievable_uplink_rate(const UplinkBudget& budget) {
  if (budget.samples_per_bit < 1 || budget.adc_sample_time <= 0.0 ||
      budget.threshold_check_time < 0.0) {
    throw std::invalid_argument("achievable_uplink_rate: bad budget");
  }
  const double t_bit = budget.samples_per_bit * budget.adc_sample_time +
                       budget.threshold_check_time;
  return 1.0 / t_bit;
}

}  // namespace ironic::comms
