// PWM duty-cycle line code for the magnetoelectric backscatter uplink
// (arXiv 2412.02499): the implant keys its load across the ME film for
// a duty-cycle-encoded fraction of each symbol window, and the wearable
// TX demodulates the reflected field. A data bit becomes chips_per_bit
// channel chips — duty_one of them high for a 1, duty_zero for a 0 —
// and the decoder thresholds the per-symbol ones count at the midpoint,
// so up to (duty_one - duty_zero) / 2 - 1 chip errors per symbol are
// absorbed for free. Deterministic both ways (no RNG, no state): safe
// to splice into a fault-injected channel without perturbing the
// campaign's thread-count-invariant fingerprints.
#pragma once

#include "src/comms/bitstream.hpp"

namespace ironic::comms {

struct PwmCodec {
  int chips_per_bit = 8;
  int duty_zero = 2;  // chips high per 0 symbol
  int duty_one = 6;   // chips high per 1 symbol

  // data bits -> chips, each symbol high-first then low.
  Bits encode(const Bits& data) const;

  // chips -> data bits: per-symbol ones count thresholded at the
  // duty midpoint. A trailing partial symbol is dropped.
  Bits decode(const Bits& chips) const;
};

}  // namespace ironic::comms
