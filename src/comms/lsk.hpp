// LSK uplink (paper Sec. III-A / IV-A): the implant short-circuits the
// rectifier input (switch M1 in Fig. 8) to key the load seen by the
// link; the patch detects the resulting supply-current change of the
// class-E amplifier across sense resistor R9 and thresholds it in the
// microcontroller. The threshold check runs in real time, which is what
// caps the uplink at 66.6 kbps (vs 100 kbps downlink).
#pragma once

#include <span>

#include "src/comms/bitstream.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::comms {

struct LskSpec {
  double bit_rate = 66.6e3;     // paper: 66.6 kbps uplink
  double v_on = 1.8;            // gate drive for the shorting switch
  double v_off = 0.0;
  double edge_time = 0.2e-6;

  double bit_period() const { return 1.0 / bit_rate; }
};

// Gate waveform for the shorting switch M1: high during '0' bits (a low
// logic value short-circuits the rectifier input, Sec. IV-A), starting
// at t_start; released after the burst.
spice::Waveform lsk_gate_waveform(const Bits& bits, const LskSpec& spec, double t_start);

// Complementary gate for M2 (the series clamp-chain switch): opened
// (driven low) while M1 shorts the input so the clamping diodes cannot
// leak Co away.
spice::Waveform lsk_m2_gate_waveform(const Bits& bits, const LskSpec& spec,
                                     double t_start);

// Patch-side detector: average the sensed supply current per bit cell
// and threshold at the midpoint of the observed extremes. A shorted
// secondary reflects less load -> the paper detects a *low* drop across
// R9 for a '0'; `invert` flips polarity for setups where the short
// increases the current instead.
Bits detect_lsk(std::span<const double> time, std::span<const double> supply_current,
                const LskSpec& spec, double t_first_bit, std::size_t n_bits,
                bool invert = false);

// Real-time budget model for the microcontroller threshold check: each
// bit requires n_samples ADC conversions plus one comparison.
struct UplinkBudget {
  double adc_sample_time = 1.0e-6;      // per conversion [s]
  double threshold_check_time = 5.0e-6; // software compare + store [s]
  int samples_per_bit = 10;
};

// Highest uplink bit rate the budget sustains [bit/s].
double achievable_uplink_rate(const UplinkBudget& budget);

}  // namespace ironic::comms
