// ASK downlink (paper Sec. III-A): the patch keys the amplitude of the
// 5 MHz power carrier at 100 kbps; the implant recovers bits with a
// clocked peak sampler (Sec. IV-B). This module provides
//   - the transmit side: bit envelope generation (depth set by the
//     R7/R8 divider of Fig. 6) and the modulated carrier Waveform, and
//   - a DSP-level receiver (envelope detector + slicer) used for BER
//     sweeps; the transistor-level demodulator lives in src/pm.
#pragma once

#include <span>
#include <vector>

#include "src/comms/bitstream.hpp"
#include "src/spice/waveform.hpp"
#include "src/util/interp.hpp"

namespace ironic::comms {

struct AskSpec {
  double bit_rate = 100e3;       // paper: 100 kbps downlink
  double carrier_frequency = 5e6;
  double amplitude_high = 1.0;   // carrier amplitude for a '1'
  // Modulation depth m = (high - low) / high, set on the patch by the
  // R7/R8 divider. The paper's measured powers (3 mW high / 1 mW low)
  // imply an amplitude ratio of sqrt(1/3) ~ 0.577.
  double modulation_depth = 1.0 - 0.577;
  double edge_time = 1e-6;       // envelope rise/fall [s]

  double amplitude_low() const { return amplitude_high * (1.0 - modulation_depth); }
  double bit_period() const { return 1.0 / bit_rate; }
};

// Modulation depth produced by the patch's R7/R8 divider (Fig. 6): the
// modulating transistor switches R8 in parallel with the PA supply path,
// scaling the carrier by R8 / (R7 + R8) during a '0'.
double modulation_depth_from_divider(double r7, double r8);

// Envelope for a bitstream starting at `t_start`: amplitude_high before
// and after the burst (unmodulated carrier keeps powering the implant).
util::PiecewiseLinear ask_envelope(const Bits& bits, const AskSpec& spec,
                                   double t_start, double t_total);

// Full transmit waveform: envelope * sin(2 pi f t).
spice::Waveform ask_waveform(const Bits& bits, const AskSpec& spec, double t_start,
                             double t_total);

// --- receiver ---------------------------------------------------------------

// Rectify + single-pole low-pass: recovers the envelope from carrier
// samples. `tau` should sit between the carrier and bit periods.
std::vector<double> envelope_detect(std::span<const double> time,
                                    std::span<const double> carrier, double tau);

// Threshold slicer sampling at bit centers. The threshold is the
// midpoint of the envelope extremes observed across the burst.
Bits slice_bits(std::span<const double> time, std::span<const double> envelope,
                double bit_rate, double t_first_bit, std::size_t n_bits);

// End-to-end reference receiver used by BER benches.
Bits demodulate_ask(std::span<const double> time, std::span<const double> carrier,
                    const AskSpec& spec, double t_first_bit, std::size_t n_bits);

// Theoretical BER of ideal envelope-sampled ASK with additive gaussian
// noise of `noise_rms` on the carrier samples: the two envelope levels
// sit (high - low)/2 from the slicing threshold, so
//   BER = Q(separation / (2 sigma_env)),
// with the envelope-detector noise bandwidth folding sigma down by
// sqrt(2 tau / T_carrier-ish); this uses the conservative sigma_env =
// noise_rms (no averaging gain), an upper bound the measured BER must
// stay below in the benches.
double ask_theoretical_ber_bound(const AskSpec& spec, double noise_rms);

}  // namespace ironic::comms
