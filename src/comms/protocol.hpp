// Transaction layer on top of the framed ASK/LSK links: sequence-numbered
// request/response exchanges with CRC screening and bounded retries —
// what the patch firmware runs when it says "acquired data are
// transmitted to the user by means of the bluetooth link".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/comms/bitstream.hpp"

namespace ironic::comms {

enum class Command : std::uint8_t {
  kPing = 0x01,
  kMeasure = 0x02,       // run a measurement, respond with the ADC code
  kSetMode = 0x03,       // payload: SensorMode ordinal
  kReadStatus = 0x04,
};

struct Request {
  std::uint8_t sequence = 0;
  Command command = Command::kPing;
  std::vector<std::uint8_t> payload;
};

struct Response {
  std::uint8_t sequence = 0;
  bool ok = false;
  std::vector<std::uint8_t> payload;
};

// Wire format (inside the CRC frame): [seq] [cmd] [payload...].
Bits encode_request(const Request& request);
std::optional<Request> decode_request(const Bits& bits);
// Response: [seq] [status] [payload...].
Bits encode_response(const Response& response);
std::optional<Response> decode_response(const Bits& bits);

// Channel function: bits in -> bits out (possibly corrupted). The
// transactor retries on CRC failure or sequence mismatch.
using Channel = std::function<Bits(const Bits&)>;

struct TransactorStats {
  int attempts = 0;
  int crc_failures = 0;
  int sequence_mismatches = 0;
};

class Transactor {
 public:
  explicit Transactor(int max_retries = 3) : max_retries_(max_retries) {}

  // Execute one request over `downlink`; the implant handler produces the
  // response payload; `uplink` carries it back. Returns nullopt when all
  // retries are exhausted.
  std::optional<Response> execute(
      const Request& request, const Channel& downlink, const Channel& uplink,
      const std::function<Response(const Request&)>& implant_handler,
      TransactorStats* stats = nullptr);

  std::uint8_t next_sequence() { return sequence_++; }

 private:
  int max_retries_;
  std::uint8_t sequence_ = 0;
};

}  // namespace ironic::comms
