// Transaction layer on top of the framed ASK/LSK links: sequence-numbered
// request/response exchanges with CRC screening and bounded retries —
// what the patch firmware runs when it says "acquired data are
// transmitted to the user by means of the bluetooth link".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/comms/bitstream.hpp"

namespace ironic::comms {

enum class Command : std::uint8_t {
  kPing = 0x01,
  kMeasure = 0x02,       // run a measurement, respond with the ADC code
  kSetMode = 0x03,       // payload: SensorMode ordinal
  kReadStatus = 0x04,
};

struct Request {
  std::uint8_t sequence = 0;
  Command command = Command::kPing;
  std::vector<std::uint8_t> payload;
};

struct Response {
  std::uint8_t sequence = 0;
  bool ok = false;
  std::vector<std::uint8_t> payload;
};

// Wire format (inside the CRC frame): [seq] [cmd] [payload...].
Bits encode_request(const Request& request);
std::optional<Request> decode_request(const Bits& bits);
// Response: [seq] [status] [payload...].
Bits encode_response(const Response& response);
std::optional<Response> decode_response(const Bits& bits);

// Channel function: bits in -> bits out (possibly corrupted). The
// transactor retries on CRC failure or sequence mismatch.
using Channel = std::function<Bits(const Bits&)>;

// --- wrap-aware sequence arithmetic ----------------------------------------
//
// Sequence numbers live in uint8 space and wrap 255 -> 0 every 256
// exchanges (a long monitoring session wraps thousands of times), so age
// comparisons must use serial-number arithmetic (RFC 1982 style): the
// signed interpretation of (a - b) mod 256. 0 is one step NEWER than
// 255; a naive `a <= b` stale check misfires at every wrap.
constexpr std::int8_t sequence_delta(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::int8_t>(static_cast<std::uint8_t>(a - b));
}
// True when `a` is strictly newer than `b` in wrap-aware order.
constexpr bool sequence_newer(std::uint8_t a, std::uint8_t b) {
  return sequence_delta(a, b) > 0;
}

struct TransactorStats {
  int attempts = 0;
  int crc_failures = 0;
  int sequence_mismatches = 0;
  // Subset of sequence_mismatches: responses carrying a sequence OLDER
  // than the outstanding request (late frames from a previous exchange).
  int stale_responses = 0;
  // Exchanges that returned nullopt after the retry budget ran out.
  int retries_exhausted = 0;
  // Implant-side duplicate deliveries absorbed by ImplantDedup.
  int duplicate_deliveries = 0;
  // Per-attempt airtime accounting at the transactor's bit rate:
  // downlink frame bits plus (when the downlink decoded) uplink frame
  // bits. One entry per attempt, across exchanges.
  std::uint64_t bits_on_air = 0;
  std::vector<double> attempt_seconds;
};

class Transactor {
 public:
  explicit Transactor(int max_retries = 3) : max_retries_(max_retries) {}

  // Execute one request over `downlink`; the implant handler produces the
  // response payload; `uplink` carries it back. Returns nullopt when all
  // retries are exhausted.
  std::optional<Response> execute(
      const Request& request, const Channel& downlink, const Channel& uplink,
      const std::function<Response(const Request&)>& implant_handler,
      TransactorStats* stats = nullptr);

  std::uint8_t next_sequence() { return sequence_++; }

  // Downlink bit rate used for per-attempt latency accounting (the
  // session layer lowers it when the link degrades).
  void set_bit_rate(double bits_per_second) { bit_rate_ = bits_per_second; }
  double bit_rate() const { return bit_rate_; }

 private:
  int max_retries_;
  std::uint8_t sequence_ = 0;
  double bit_rate_ = 100e3;  // paper's nominal ASK downlink rate
};

// Implant-side request de-duplication. Commands with side effects (a
// measurement) must execute exactly once per sequence number even when
// uplink-only corruption makes the patch re-send an already-handled
// request: the implant replays the cached response instead of measuring
// again. Newness uses sequence_newer, so the 255 -> 0 wrap does not
// resurrect the stale-duplicate path.
//
// History is bounded by a sliding window of the most recent `window`
// handled sequences: a multi-hour soak (a fleet session wraps the
// sequence space thousands of times) holds at most `window` cached
// responses, never an unbounded history. A duplicate still inside the
// window replays its *own* cached response; a duplicate older than the
// window (the patch gave up on it long ago — only a pathologically late
// frame gets here) replays the newest cached response, which the
// transactor then discards as a sequence mismatch.
class ImplantDedup {
 public:
  static constexpr std::size_t kDefaultWindow = 8;
  explicit ImplantDedup(std::size_t window = kDefaultWindow);

  Response handle(const Request& request,
                  const std::function<Response(const Request&)>& handler,
                  TransactorStats* stats = nullptr);

  // Responses currently cached (<= window_capacity(), the memory bound).
  std::size_t cached() const { return window_.size(); }
  std::size_t window_capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint8_t sequence = 0;
    Response response;
  };

  std::size_t capacity_;
  std::deque<Entry> window_;  // oldest first; newest is back()
  bool have_last_ = false;
  std::uint8_t last_sequence_ = 0;
};

}  // namespace ironic::comms
