// Block interleaving for burst-error channels. LSK uplink errors come in
// bursts (a motion artifact or patch slip corrupts several consecutive
// bits); interleaving spreads a burst across many frames' worth of bits
// so the CRC/retry layer sees isolated errors instead of losing whole
// frames.
#pragma once

#include <cstddef>

#include "src/comms/bitstream.hpp"
#include "src/util/rng.hpp"

namespace ironic::comms {

// rows x cols block interleaver: write row-wise, read column-wise.
// The input must be exactly rows*cols bits.
Bits interleave(const Bits& bits, std::size_t rows, std::size_t cols);
Bits deinterleave(const Bits& bits, std::size_t rows, std::size_t cols);

// Burst channel: with probability `burst_prob` per transit, flips
// `burst_length` consecutive bits starting at a random offset.
Bits burst_channel(const Bits& bits, double burst_prob, std::size_t burst_length,
                   util::Rng& rng);

// Longest run of consecutive errors between two equal-length streams.
std::size_t longest_error_burst(const Bits& sent, const Bits& received);

}  // namespace ironic::comms
